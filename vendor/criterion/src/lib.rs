//! Offline shim for the slice of the `criterion` API this workspace's
//! benches use: groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter` and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: per benchmark, a short warm-up, then timed batches
//! until either `sample_size` samples are collected or a wall-clock cap is
//! hit; the median per-iteration time is printed. Good enough to compare
//! orders of magnitude and catch gross regressions — not a statistical
//! replacement for real criterion.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing harness passed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    time_cap: Duration,
}

impl Bencher {
    /// Times `routine`, collecting per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count that takes ≥ ~1ms
        // so Instant overhead is negligible, capped for slow routines.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000);

        let started = Instant::now();
        while self.samples.len() < self.sample_size && started.elapsed() < self.time_cap {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / per_sample as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            time_cap: self.criterion.time_cap,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            time_cap: self.criterion.time_cap,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    fn report(&mut self, id: &BenchmarkId, b: &Bencher) {
        let mut sorted = b.samples.clone();
        sorted.sort();
        let mut line = String::new();
        if sorted.is_empty() {
            let _ = write!(line, "{}/{}: no samples", self.name, id.label);
        } else {
            let median = sorted[sorted.len() / 2];
            let lo = sorted[0];
            let hi = sorted[sorted.len() - 1];
            let _ = write!(
                line,
                "{}/{}: median {} (min {}, max {}, {} samples)",
                self.name,
                id.label,
                fmt_duration(median),
                fmt_duration(lo),
                fmt_duration(hi),
                sorted.len()
            );
        }
        println!("{line}");
        self.criterion.reports.push(line);
    }

    /// Ends the group (printing happened per benchmark already).
    pub fn finish(&mut self) {}
}

/// Entry point object mirroring `criterion::Criterion`.
pub struct Criterion {
    time_cap: Duration,
    reports: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Per-benchmark wall-clock cap; keeps full bench runs bounded.
            time_cap: Duration::from_millis(500),
            reports: Vec::new(),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group {name} --");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function(BenchmarkId::from(name), f);
        self
    }

    /// Final hook called by `criterion_main!`; a no-op in the shim.
    pub fn final_summary(&self) {}
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Criterion bench group entry point (generated by `criterion_group!`).
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Declares `main` running the given groups. Accepts (and ignores) the
/// harness CLI arguments cargo passes to bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench/test pass harness flags (e.g. --bench, --test);
            // the shim runs everything unconditionally.
            let _args: Vec<String> = std::env::args().collect();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3usize, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert_eq!(c.reports.len(), 2);
        assert!(c.reports[0].contains("shim/noop"));
        assert!(c.reports[1].contains("shim/param/3"));
    }
}
