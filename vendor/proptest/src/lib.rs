//! Offline shim for the slice of the `proptest` API this workspace uses.
//!
//! Implements the `proptest!` test macro with `#![proptest_config(...)]`
//! support, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, range and
//! tuple strategies, and `collection::vec`. Case generation is
//! deterministic (seeded per test run) so failures reproduce; there is no
//! shrinking — a failing case is reported verbatim.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::ops::Range;

/// Deterministic RNG handed to strategies.
pub type TestRng = StdRng;

/// Per-test configuration (only `cases` is supported).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; the shim trims it to keep `cargo test`
        // snappy while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Why a property case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the input out; the case is skipped.
    Reject(String),
    /// `prop_assert!`-style failure; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Marks an assumption rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Marks an assertion failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Whether this is an assumption rejection (skippable).
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

/// Result type of one generated property case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator. The shim generates independent random values; there
/// is no shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Size specification: a fixed length or a half-open range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                lo: len,
                hi: len + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// One-line imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Fails the current property case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Runs one property: generates inputs, executes the body, tracks
/// rejections. Called by the `proptest!` expansion — not user-facing.
pub fn run_property<F>(name: &str, config: ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    // Deterministic seed per property name so reruns reproduce failures.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    let mut rng = TestRng::seed_from_u64(seed);
    let mut executed = 0u32;
    let mut attempts = 0u64;
    let max_attempts = (config.cases as u64) * 20 + 100;
    while executed < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "property '{name}': too many prop_assume! rejections \
             ({executed}/{} cases ran in {attempts} attempts)",
            config.cases
        );
        match case(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{name}' failed after {executed} passing cases: {msg}");
            }
        }
    }
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0usize..10, v in proptest::collection::vec(0f64..1.0, 1..20)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            $crate::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                $cfg,
                |__proptest_rng: &mut $crate::TestRng| -> $crate::TestCaseResult {
                    $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 5usize..10, y in 0.5f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.5..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_vecs(pairs in crate::collection::vec((0usize..4, 0f64..1.0), 1..8)) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 8);
            for (a, b) in pairs {
                prop_assert!(a < 4);
                prop_assert!((0.0..1.0).contains(&b));
            }
        }

        #[test]
        fn fixed_len_vec(v in crate::collection::vec(0u64..3, 7)) {
            prop_assert_eq!(v.len(), 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn assume_filters(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failures_panic() {
        crate::run_property("demo", ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
