//! Offline shim of a `poll(2)` readiness API — the event substrate under
//! the `khist-serve` single-threaded reactor.
//!
//! The build environment has no network access, so the usual reactor
//! crates (`mio`, `polling`, `tokio`) cannot be fetched; this shim
//! implements exactly the slice the reactor needs, mirroring how the
//! `crossbeam`/`rand` shims stand in for their crates.io namesakes:
//!
//! * [`Poller::wait`] — level-triggered readiness over a set of file
//!   descriptors via the `poll(2)` syscall (no `epoll` instance to
//!   manage: the reactor re-submits its interest set each iteration,
//!   which for the tens-to-hundreds of connections a `khist serve`
//!   process multiplexes is indistinguishable from `epoll` and far
//!   simpler to reason about);
//! * [`set_nonblocking`] — `fcntl(F_SETFL, O_NONBLOCK)` for descriptors
//!   `std` gives no nonblocking switch for (stdin, inherited pipes).
//!
//! # Safety and scoping notes
//!
//! This crate is the **only** non-test place in the workspace that may
//! contain `unsafe`: the workspace policy (`[workspace.lints]` +
//! khist-lint's `forbid-unsafe` rule) forbids it everywhere else, and
//! vendored shims are exactly the carve-out — like `alloc-counter`'s
//! `GlobalAlloc` impl, a readiness syscall cannot be expressed in safe
//! Rust. The unsafe surface is confined to two audited `extern "C"`
//! calls:
//!
//! 1. `poll(fds, nfds, timeout)` — sound because `fds` points into a
//!    live, exclusively borrowed `Vec<RawPollFd>` whose length equals
//!    `nfds`, and `RawPollFd` is `#[repr(C)]`-identical to `struct
//!    pollfd`. The kernel writes only the `revents` field of each entry.
//!    A caller-supplied *closed* fd does not invalidate memory — the
//!    kernel reports `POLLNVAL` for it.
//! 2. `fcntl(fd, F_GETFL/F_SETFL, arg)` — sound for any integer `fd`;
//!    the worst a stale descriptor produces is `EBADF`, surfaced as an
//!    [`std::io::Error`].
//!
//! Neither call retains the pointers past the call, spawns threads,
//! installs handlers, or touches process-global state. Constants are the
//! Linux ABI values (this workspace builds and runs on Linux only); the
//! crate links no `libc` crate — the symbols resolve from the C runtime
//! `std` already links.
//!
//! The reactor built on top stays single-threaded and owns the only
//! clock site in `crates/serve` (khist-lint scopes `wall-clock` and
//! `thread-discipline` accordingly); this shim itself never reads time.

use std::io;

/// Raw file descriptor, as [`std::os::fd::RawFd`] (an `i32` on Unix).
pub type RawFd = i32;

/// Linux ABI constants and FFI declarations for the two syscalls.
mod sys {
    use std::os::raw::{c_int, c_short, c_ulong};

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    pub const O_NONBLOCK: c_int = 0o4000;

    /// `struct pollfd` from `<poll.h>`, field for field.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct RawPollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    extern "C" {
        pub fn poll(fds: *mut RawPollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    }
}

/// One descriptor's interest and readiness for a [`Poller::wait`] round.
///
/// The caller sets `fd` and the `read`/`write` interest flags; `wait`
/// fills the `readable`/`writable`/`hangup`/`invalid` results. Hangup and
/// error conditions are always reported, interest or not — a reactor must
/// notice a peer closing even when it parked the connection's reads.
#[derive(Debug, Clone, Copy, Default)]
pub struct PollFd {
    /// The descriptor to watch.
    pub fd: RawFd,
    /// Wake when `fd` is readable (or a peer hung up).
    pub read: bool,
    /// Wake when `fd` accepts writes without blocking.
    pub write: bool,
    /// Result: a read will not block (data, EOF, or a pending accept).
    pub readable: bool,
    /// Result: a write will not block.
    pub writable: bool,
    /// Result: peer hung up or the descriptor errored (`POLLHUP|POLLERR`).
    pub hangup: bool,
    /// Result: `fd` is not an open descriptor (`POLLNVAL`).
    pub invalid: bool,
}

impl PollFd {
    /// Interest in reading `fd`.
    pub fn read(fd: RawFd) -> PollFd {
        PollFd {
            fd,
            read: true,
            ..PollFd::default()
        }
    }

    /// Interest in writing `fd`.
    pub fn write(fd: RawFd) -> PollFd {
        PollFd {
            fd,
            write: true,
            ..PollFd::default()
        }
    }
}

/// A reusable `poll(2)` front end: holds the raw `pollfd` buffer so a
/// reactor looping over [`Poller::wait`] allocates nothing per iteration
/// once the buffer has grown to the working set size.
#[derive(Debug, Default)]
pub struct Poller {
    raw: Vec<sys::RawPollFd>,
}

impl Poller {
    /// A poller with an empty scratch buffer.
    pub fn new() -> Poller {
        Poller::default()
    }

    /// Blocks until at least one descriptor in `fds` is ready, the
    /// timeout elapses, or a signal interrupts the wait.
    ///
    /// `timeout_ms < 0` waits indefinitely; `0` polls without blocking.
    /// Returns the number of ready descriptors (0 on timeout) after
    /// filling each entry's result flags. A signal interruption (`EINTR`)
    /// is reported as `Ok(0)` — callers re-evaluate deadlines and loop,
    /// which is what a reactor does on timeout anyway.
    pub fn wait(&mut self, fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        self.raw.clear();
        self.raw.extend(fds.iter().map(|f| sys::RawPollFd {
            fd: f.fd,
            events: if f.read { sys::POLLIN } else { 0 } | if f.write { sys::POLLOUT } else { 0 },
            revents: 0,
        }));
        // SAFETY: `self.raw` is a live, exclusively borrowed buffer of
        // `#[repr(C)]` pollfd-identical entries; its pointer/length pair
        // is valid for the duration of the call and the kernel writes
        // only within it (the `revents` fields). See the module docs.
        let rc = unsafe {
            sys::poll(
                self.raw.as_mut_ptr(),
                self.raw.len() as std::os::raw::c_ulong,
                timeout_ms,
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                for f in fds.iter_mut() {
                    f.readable = false;
                    f.writable = false;
                    f.hangup = false;
                    f.invalid = false;
                }
                return Ok(0);
            }
            return Err(err);
        }
        for (f, raw) in fds.iter_mut().zip(&self.raw) {
            f.readable = raw.revents & sys::POLLIN != 0;
            f.writable = raw.revents & sys::POLLOUT != 0;
            f.hangup = raw.revents & (sys::POLLHUP | sys::POLLERR) != 0;
            f.invalid = raw.revents & sys::POLLNVAL != 0;
        }
        Ok(rc as usize)
    }
}

/// Switches `O_NONBLOCK` on a raw descriptor — the missing `std` API for
/// stdin and inherited pipes (sockets use `set_nonblocking` on their
/// handles). Errors surface as [`std::io::Error`] (`EBADF` for a stale
/// descriptor).
pub fn set_nonblocking(fd: RawFd, nonblocking: bool) -> io::Result<()> {
    // SAFETY: fcntl on an arbitrary integer descriptor cannot touch
    // memory; an invalid fd yields EBADF. See the module docs.
    let flags = unsafe { sys::fcntl(fd, sys::F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    let wanted = if nonblocking {
        flags | sys::O_NONBLOCK
    } else {
        flags & !sys::O_NONBLOCK
    };
    if wanted == flags {
        return Ok(());
    }
    // SAFETY: as above — no memory is involved.
    if unsafe { sys::fcntl(fd, sys::F_SETFL, wanted) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;

    #[test]
    fn pipe_readiness_and_timeout() {
        // A connected Unix stream pair: writable immediately, readable
        // only once bytes arrive.
        let (mut a, mut b) = std::os::unix::net::UnixStream::pair().unwrap();
        let mut poller = Poller::new();

        let mut fds = [PollFd::read(a.as_raw_fd())];
        let n = poller.wait(&mut fds, 0).unwrap();
        assert_eq!(n, 0, "nothing written yet");
        assert!(!fds[0].readable);

        b.write_all(b"ping").unwrap();
        let n = poller.wait(&mut fds, 1_000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable && !fds[0].hangup);
        let mut buf = [0u8; 4];
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        let mut wfds = [PollFd::write(b.as_raw_fd())];
        assert_eq!(poller.wait(&mut wfds, 0).unwrap(), 1);
        assert!(wfds[0].writable);
    }

    #[test]
    fn hangup_is_reported_even_without_interest() {
        let (a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        drop(b);
        let mut poller = Poller::new();
        let mut fds = [PollFd::read(a.as_raw_fd())];
        assert_eq!(poller.wait(&mut fds, 1_000).unwrap(), 1);
        assert!(fds[0].readable || fds[0].hangup, "EOF wakes the poll");
    }

    #[test]
    fn nonblocking_toggle_round_trips() {
        let (mut a, _b) = std::os::unix::net::UnixStream::pair().unwrap();
        set_nonblocking(a.as_raw_fd(), true).unwrap();
        let mut buf = [0u8; 1];
        let err = a.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        set_nonblocking(a.as_raw_fd(), false).unwrap();
        assert!(set_nonblocking(-1, true).is_err(), "EBADF surfaces");
    }
}
