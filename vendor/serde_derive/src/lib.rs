//! Derive macro for the vendored `serde::Serialize` marker trait.
//!
//! Hand-rolled token scanning instead of `syn`/`quote` (unavailable
//! offline): finds the `struct`/`enum` name and emits an empty marker
//! impl. Generic items are not supported — no type in this workspace
//! derives `Serialize` on a generic container.

use proc_macro::{TokenStream, TokenTree};

/// Derives the marker `impl serde::Serialize for <Type> {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut tokens = input.into_iter();
    let mut name: Option<String> = None;
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                if let Some(TokenTree::Ident(type_name)) = tokens.next() {
                    name = Some(type_name.to_string());
                }
                break;
            }
        }
    }
    let name = name.expect("derive(Serialize) shim: could not find type name");
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("derive(Serialize) shim: generated impl must parse")
}
