//! Offline shim for `crossbeam::scope`, built on `std::thread::scope`
//! (stable since Rust 1.63 — scoped threads landed in std after crossbeam
//! pioneered the API, which is why the adapter is this thin), plus a
//! [`Courier`] persistent-worker primitive for callers that want to pay
//! thread spawn cost once instead of per batch.
//!
//! Matches the crossbeam contract the workspace relies on: `scope` returns
//! `Err` (instead of unwinding) when any spawned thread panicked, and the
//! closure passed to `spawn` receives a scope handle for nested spawns.

#![forbid(unsafe_code)]

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Handle for spawning threads inside a [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a scope handle
    /// (crossbeam's signature), enabling nested spawns.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        // Capture the std scope reference (it lives for 'scope) and build a
        // fresh wrapper inside the thread, so no closure-local is borrowed.
        let inner = self.inner;
        self.inner.spawn(move || {
            let nested = Scope { inner };
            f(&nested)
        })
    }
}

/// Creates a scope in which borrowed-data threads can be spawned; joins all
/// of them before returning. Returns `Err` with the panic payload if any
/// spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope, 'a> FnOnce(&'a Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        })
    }))
}

/// Mailbox shared between a [`Courier`] and its worker thread: a bounded
/// two-deep ring of jobs and results. The deques are preallocated to
/// [`Courier::DEPTH`] slots at spawn and the submit-side depth check keeps
/// them there, so pushes never reallocate — the steady-state round trip
/// stays heap-free exactly like the old single-slot cell.
struct Mailbox<J, R> {
    /// Jobs submitted but not yet picked up by the worker, FIFO.
    jobs: VecDeque<J>,
    /// Finished results awaiting [`Courier::collect`], FIFO.
    results: VecDeque<R>,
    /// Whether the worker is currently running a job it popped (that job
    /// occupies a ring slot even though it sits in neither deque).
    running: bool,
    /// The worker panicked while running a job; it has exited.
    poisoned: bool,
    /// Owner requested shutdown; the worker exits when it sees this.
    shutdown: bool,
}

/// A persistent worker thread fed jobs through a bounded two-deep ring:
/// spawn once, then `submit`/`collect` per round with no thread creation,
/// no channel allocation, and no heap traffic beyond what the job itself
/// does. The worker parks on a condvar while idle.
///
/// Protocol: at most [`Courier::DEPTH`] jobs may be outstanding
/// (submitted but not yet collected) at once, and results come back in
/// submission order. Depth 1 degenerates to the classic strict
/// submit→collect pairing; depth 2 lets a caller keep the worker busy on
/// job *n*+1 while it hands off job *n*'s result — the pipelining the
/// engine's parallel route phase leans on. `collect` panics if the worker
/// panicked while running a job, mirroring how a scoped-spawn caller
/// would surface a worker panic (results finished before the panic are
/// still delivered first). Dropping the courier signals shutdown and
/// joins the thread.
pub struct Courier<J, R> {
    mailbox: Arc<(Mutex<Mailbox<J, R>>, Condvar)>,
    worker: Option<JoinHandle<()>>,
}

impl<J: Send + 'static, R: Send + 'static> Courier<J, R> {
    /// Ring depth: how many jobs may be in flight (queued, running, or
    /// finished-but-uncollected) per courier at once.
    pub const DEPTH: usize = 2;

    /// Spawns the worker thread (named `name` for debuggability) running
    /// `work` on every submitted job until the courier is dropped.
    pub fn spawn<F>(name: &str, mut work: F) -> Self
    where
        F: FnMut(J) -> R + Send + 'static,
    {
        let mailbox: Arc<(Mutex<Mailbox<J, R>>, Condvar)> = Arc::new((
            Mutex::new(Mailbox {
                jobs: VecDeque::with_capacity(Self::DEPTH),
                results: VecDeque::with_capacity(Self::DEPTH),
                running: false,
                poisoned: false,
                shutdown: false,
            }),
            Condvar::new(),
        ));
        let shared = Arc::clone(&mailbox);
        let worker = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                let (lock, cvar) = &*shared;
                loop {
                    let job = {
                        let mut mb = lock.lock().unwrap_or_else(|e| e.into_inner());
                        loop {
                            // Shutdown wins over queued jobs (they drop
                            // with the mailbox), matching the old cell's
                            // drop-the-pending-job semantics.
                            if mb.shutdown {
                                return;
                            }
                            if let Some(job) = mb.jobs.pop_front() {
                                mb.running = true;
                                break job;
                            }
                            mb = cvar.wait(mb).unwrap_or_else(|e| e.into_inner());
                        }
                    };
                    let outcome = catch_unwind(AssertUnwindSafe(|| work(job)));
                    let mut mb = lock.lock().unwrap_or_else(|e| e.into_inner());
                    mb.running = false;
                    match outcome {
                        Ok(result) => {
                            mb.results.push_back(result);
                            cvar.notify_all();
                        }
                        Err(_) => {
                            mb.poisoned = true;
                            cvar.notify_all();
                            return;
                        }
                    }
                }
            })
            .expect("failed to spawn courier worker thread");
        Courier {
            mailbox,
            worker: Some(worker),
        }
    }

    /// Hands the worker its next job. Up to [`Courier::DEPTH`] jobs may be
    /// outstanding; results come back in submission order via
    /// [`Courier::collect`].
    ///
    /// # Panics
    /// Panics on protocol misuse (more than `DEPTH` outstanding jobs) or
    /// if the worker has already panicked.
    pub fn submit(&self, job: J) {
        let (lock, cvar) = &*self.mailbox;
        let mut mb = lock.lock().unwrap_or_else(|e| e.into_inner());
        assert!(
            !mb.poisoned,
            "courier worker panicked on a previous job"
        );
        let outstanding = mb.jobs.len() + usize::from(mb.running) + mb.results.len();
        assert!(
            outstanding < Self::DEPTH,
            "courier protocol violation: {outstanding} jobs already outstanding \
             (ring depth {}); collect a result first",
            Self::DEPTH
        );
        mb.jobs.push_back(job);
        cvar.notify_all();
    }

    /// Blocks until the oldest in-flight job finishes and returns its
    /// result (FIFO with respect to [`Courier::submit`] order).
    ///
    /// # Panics
    /// Panics if the worker panicked while running a job and no earlier
    /// result remains queued.
    pub fn collect(&self) -> R {
        let (lock, cvar) = &*self.mailbox;
        let mut mb = lock.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = mb.results.pop_front() {
                return result;
            }
            if mb.poisoned {
                panic!("courier worker panicked");
            }
            mb = cvar.wait(mb).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl<J, R> Drop for Courier<J, R> {
    fn drop(&mut self) {
        {
            let (lock, cvar) = &*self.mailbox;
            let mut mb = lock.lock().unwrap_or_else(|e| e.into_inner());
            // A poisoned worker already exited; otherwise ask it to stop
            // (dropping any un-collected results and un-run jobs).
            mb.shutdown = true;
            cvar.notify_all();
        }
        if let Some(worker) = self.worker.take() {
            // The worker never exits by panic path without poisoning the
            // mailbox, and join only errs on panic — which catch_unwind
            // intercepted.
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawns_and_joins() {
        let counter = AtomicUsize::new(0);
        let result = scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert!(result.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let counter = AtomicUsize::new(0);
        let result = scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        });
        assert!(result.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let result = scope(|s| {
            s.spawn(|_| panic!("worker down"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn returns_closure_value() {
        let v = scope(|_| 41 + 1).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn courier_round_trips_jobs() {
        let courier: Courier<u64, u64> = Courier::spawn("test-courier", |x| x * 2);
        for round in 0..100u64 {
            courier.submit(round);
            assert_eq!(courier.collect(), round * 2);
        }
    }

    #[test]
    fn courier_worker_keeps_closure_state() {
        let courier: Courier<u64, u64> = Courier::spawn("test-courier-state", {
            let mut total = 0u64;
            move |x| {
                total += x;
                total
            }
        });
        courier.submit(3);
        assert_eq!(courier.collect(), 3);
        courier.submit(4);
        assert_eq!(courier.collect(), 7);
    }

    #[test]
    fn courier_moves_owned_buffers_without_copying() {
        // The job and result types can carry big owned buffers; the round
        // trip preserves identity (same allocation, same contents).
        let courier: Courier<Vec<usize>, (usize, Vec<usize>)> =
            Courier::spawn("test-courier-buffers", |buf: Vec<usize>| (buf.iter().sum(), buf));
        let buf: Vec<usize> = (0..1024).collect();
        let expected_sum: usize = buf.iter().sum();
        let ptr_before = buf.as_ptr();
        courier.submit(buf);
        let (sum, buf) = courier.collect();
        assert_eq!(sum, expected_sum);
        assert_eq!(buf.as_ptr(), ptr_before);
    }

    #[test]
    fn courier_drop_joins_idle_worker() {
        let counter = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&counter);
        let courier: Courier<usize, usize> = Courier::spawn("test-courier-drop", move |x| {
            seen.fetch_add(1, Ordering::Relaxed);
            x
        });
        courier.submit(1);
        assert_eq!(courier.collect(), 1);
        drop(courier);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn courier_pipelines_two_jobs_fifo() {
        // Two jobs may be outstanding at once; results come back in
        // submission order, not completion-speed order.
        let courier: Courier<u64, u64> = Courier::spawn("test-courier-ring", |x| {
            if x == 1 {
                // The first job is the slow one: if collection order
                // followed completion, job 2's result would come first.
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x * 10
        });
        courier.submit(1);
        courier.submit(2);
        assert_eq!(courier.collect(), 10);
        assert_eq!(courier.collect(), 20);
        // The ring drains fully: a fresh pair works the same way.
        courier.submit(3);
        courier.submit(4);
        assert_eq!(courier.collect(), 30);
        assert_eq!(courier.collect(), 40);
    }

    #[test]
    fn courier_rejects_overfull_ring() {
        let courier: Courier<u64, u64> = Courier::spawn("test-courier-depth", |x| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            x
        });
        courier.submit(1);
        courier.submit(2);
        // A third outstanding job exceeds DEPTH regardless of whether the
        // first two are queued, running, or already finished.
        let third = catch_unwind(AssertUnwindSafe(|| courier.submit(3)));
        assert!(third.is_err(), "ring depth {} enforced", Courier::<u64, u64>::DEPTH);
        // The poisoned-Mutex recovery path keeps the courier usable.
        assert_eq!(courier.collect(), 1);
        assert_eq!(courier.collect(), 2);
        courier.submit(4);
        assert_eq!(courier.collect(), 4);
    }

    #[test]
    fn courier_panic_mid_ring_delivers_earlier_results_first() {
        // Job 1 succeeds, job 2 panics: the first collect still returns
        // job 1's result; only the second collect surfaces the panic.
        let courier: Courier<u64, u64> = Courier::spawn("test-courier-ring-panic", |x| {
            assert!(x != 13, "unlucky job");
            x
        });
        courier.submit(1);
        courier.submit(13);
        assert_eq!(courier.collect(), 1);
        let second = catch_unwind(AssertUnwindSafe(|| courier.collect()));
        assert!(second.is_err());
    }

    #[test]
    fn courier_worker_panic_surfaces_on_collect() {
        let courier: Courier<u64, u64> = Courier::spawn("test-courier-panic", |x| {
            assert!(x != 13, "unlucky job");
            x
        });
        courier.submit(1);
        assert_eq!(courier.collect(), 1);
        courier.submit(13);
        let collected = catch_unwind(AssertUnwindSafe(|| courier.collect()));
        assert!(collected.is_err());
    }
}
