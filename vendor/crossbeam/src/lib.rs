//! Offline shim for `crossbeam::scope`, built on `std::thread::scope`
//! (stable since Rust 1.63 — scoped threads landed in std after crossbeam
//! pioneered the API, which is why the adapter is this thin).
//!
//! Matches the crossbeam contract the workspace relies on: `scope` returns
//! `Err` (instead of unwinding) when any spawned thread panicked, and the
//! closure passed to `spawn` receives a scope handle for nested spawns.

#![forbid(unsafe_code)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Handle for spawning threads inside a [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a scope handle
    /// (crossbeam's signature), enabling nested spawns.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        // Capture the std scope reference (it lives for 'scope) and build a
        // fresh wrapper inside the thread, so no closure-local is borrowed.
        let inner = self.inner;
        self.inner.spawn(move || {
            let nested = Scope { inner };
            f(&nested)
        })
    }
}

/// Creates a scope in which borrowed-data threads can be spawned; joins all
/// of them before returning. Returns `Err` with the panic payload if any
/// spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope, 'a> FnOnce(&'a Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        })
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawns_and_joins() {
        let counter = AtomicUsize::new(0);
        let result = scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert!(result.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let counter = AtomicUsize::new(0);
        let result = scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        });
        assert!(result.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let result = scope(|s| {
            s.spawn(|_| panic!("worker down"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn returns_closure_value() {
        let v = scope(|_| 41 + 1).unwrap();
        assert_eq!(v, 42);
    }
}
