//! Offline shim for `crossbeam::scope`, built on `std::thread::scope`
//! (stable since Rust 1.63 — scoped threads landed in std after crossbeam
//! pioneered the API, which is why the adapter is this thin), plus a
//! [`Courier`] persistent-worker primitive for callers that want to pay
//! thread spawn cost once instead of per batch.
//!
//! Matches the crossbeam contract the workspace relies on: `scope` returns
//! `Err` (instead of unwinding) when any spawned thread panicked, and the
//! closure passed to `spawn` receives a scope handle for nested spawns.

#![forbid(unsafe_code)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Handle for spawning threads inside a [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a scope handle
    /// (crossbeam's signature), enabling nested spawns.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        // Capture the std scope reference (it lives for 'scope) and build a
        // fresh wrapper inside the thread, so no closure-local is borrowed.
        let inner = self.inner;
        self.inner.spawn(move || {
            let nested = Scope { inner };
            f(&nested)
        })
    }
}

/// Creates a scope in which borrowed-data threads can be spawned; joins all
/// of them before returning. Returns `Err` with the panic payload if any
/// spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope, 'a> FnOnce(&'a Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        })
    }))
}

/// Mailbox cell shared between a [`Courier`] and its worker thread.
enum Cell<J, R> {
    /// No job pending and no result waiting.
    Empty,
    /// A job submitted but not yet picked up by the worker.
    Job(J),
    /// A finished result awaiting [`Courier::collect`].
    Done(R),
    /// The worker panicked while running a job; it has exited.
    Poisoned,
    /// Owner requested shutdown; the worker exits when it sees this.
    Shutdown,
}

/// A persistent worker thread fed one job at a time through a single-slot
/// mailbox: spawn once, then `submit`/`collect` per round with no thread
/// creation, no channel allocation, and no heap traffic beyond what the job
/// itself does. The worker parks on a condvar while idle.
///
/// Protocol: every [`Courier::submit`] must be paired with exactly one
/// [`Courier::collect`] before the next submit. `collect` panics if the
/// worker panicked while running a job, mirroring how a scoped-spawn
/// caller would surface a worker panic. Dropping the courier signals
/// shutdown and joins the thread.
pub struct Courier<J, R> {
    mailbox: Arc<(Mutex<Cell<J, R>>, Condvar)>,
    worker: Option<JoinHandle<()>>,
}

impl<J: Send + 'static, R: Send + 'static> Courier<J, R> {
    /// Spawns the worker thread (named `name` for debuggability) running
    /// `work` on every submitted job until the courier is dropped.
    pub fn spawn<F>(name: &str, mut work: F) -> Self
    where
        F: FnMut(J) -> R + Send + 'static,
    {
        let mailbox: Arc<(Mutex<Cell<J, R>>, Condvar)> =
            Arc::new((Mutex::new(Cell::Empty), Condvar::new()));
        let shared = Arc::clone(&mailbox);
        let worker = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                let (lock, cvar) = &*shared;
                loop {
                    let job = {
                        let mut cell = lock.lock().unwrap_or_else(|e| e.into_inner());
                        loop {
                            match &*cell {
                                Cell::Shutdown => return,
                                Cell::Job(_) => break,
                                _ => cell = cvar.wait(cell).unwrap_or_else(|e| e.into_inner()),
                            }
                        }
                        match std::mem::replace(&mut *cell, Cell::Empty) {
                            Cell::Job(job) => job,
                            // The loop above only breaks on Cell::Job.
                            _ => unreachable!("mailbox state changed under lock"),
                        }
                    };
                    let outcome = catch_unwind(AssertUnwindSafe(|| work(job)));
                    let mut cell = lock.lock().unwrap_or_else(|e| e.into_inner());
                    let done = match outcome {
                        Ok(result) => {
                            *cell = Cell::Done(result);
                            false
                        }
                        Err(_) => {
                            *cell = Cell::Poisoned;
                            true
                        }
                    };
                    cvar.notify_all();
                    if done {
                        return;
                    }
                }
            })
            .expect("failed to spawn courier worker thread");
        Courier {
            mailbox,
            worker: Some(worker),
        }
    }

    /// Hands the worker its next job. Must not be called while a previous
    /// job's result is still uncollected.
    ///
    /// # Panics
    /// Panics on protocol misuse (submit-before-collect) or if the worker
    /// has already panicked.
    pub fn submit(&self, job: J) {
        let (lock, cvar) = &*self.mailbox;
        let mut cell = lock.lock().unwrap_or_else(|e| e.into_inner());
        match &*cell {
            Cell::Empty => *cell = Cell::Job(job),
            Cell::Poisoned => panic!("courier worker panicked on a previous job"),
            _ => panic!("courier protocol violation: submit before collect"),
        }
        cvar.notify_all();
    }

    /// Blocks until the in-flight job finishes and returns its result.
    ///
    /// # Panics
    /// Panics if the worker panicked while running the job.
    pub fn collect(&self) -> R {
        let (lock, cvar) = &*self.mailbox;
        let mut cell = lock.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match &*cell {
                Cell::Done(_) => match std::mem::replace(&mut *cell, Cell::Empty) {
                    Cell::Done(result) => return result,
                    _ => unreachable!("mailbox state changed under lock"),
                },
                Cell::Poisoned => panic!("courier worker panicked"),
                _ => cell = cvar.wait(cell).unwrap_or_else(|e| e.into_inner()),
            }
        }
    }
}

impl<J, R> Drop for Courier<J, R> {
    fn drop(&mut self) {
        {
            let (lock, cvar) = &*self.mailbox;
            let mut cell = lock.lock().unwrap_or_else(|e| e.into_inner());
            // A poisoned worker already exited; otherwise ask it to stop
            // (dropping any un-collected result or un-run job).
            if !matches!(&*cell, Cell::Poisoned) {
                *cell = Cell::Shutdown;
            }
            cvar.notify_all();
        }
        if let Some(worker) = self.worker.take() {
            // The worker never exits by panic path without setting the cell,
            // and join only errs on panic — which catch_unwind intercepted.
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawns_and_joins() {
        let counter = AtomicUsize::new(0);
        let result = scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert!(result.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let counter = AtomicUsize::new(0);
        let result = scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        });
        assert!(result.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let result = scope(|s| {
            s.spawn(|_| panic!("worker down"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn returns_closure_value() {
        let v = scope(|_| 41 + 1).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn courier_round_trips_jobs() {
        let courier: Courier<u64, u64> = Courier::spawn("test-courier", |x| x * 2);
        for round in 0..100u64 {
            courier.submit(round);
            assert_eq!(courier.collect(), round * 2);
        }
    }

    #[test]
    fn courier_worker_keeps_closure_state() {
        let courier: Courier<u64, u64> = Courier::spawn("test-courier-state", {
            let mut total = 0u64;
            move |x| {
                total += x;
                total
            }
        });
        courier.submit(3);
        assert_eq!(courier.collect(), 3);
        courier.submit(4);
        assert_eq!(courier.collect(), 7);
    }

    #[test]
    fn courier_moves_owned_buffers_without_copying() {
        // The job and result types can carry big owned buffers; the round
        // trip preserves identity (same allocation, same contents).
        let courier: Courier<Vec<usize>, (usize, Vec<usize>)> =
            Courier::spawn("test-courier-buffers", |buf: Vec<usize>| (buf.iter().sum(), buf));
        let buf: Vec<usize> = (0..1024).collect();
        let expected_sum: usize = buf.iter().sum();
        let ptr_before = buf.as_ptr();
        courier.submit(buf);
        let (sum, buf) = courier.collect();
        assert_eq!(sum, expected_sum);
        assert_eq!(buf.as_ptr(), ptr_before);
    }

    #[test]
    fn courier_drop_joins_idle_worker() {
        let counter = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&counter);
        let courier: Courier<usize, usize> = Courier::spawn("test-courier-drop", move |x| {
            seen.fetch_add(1, Ordering::Relaxed);
            x
        });
        courier.submit(1);
        assert_eq!(courier.collect(), 1);
        drop(courier);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn courier_worker_panic_surfaces_on_collect() {
        let courier: Courier<u64, u64> = Courier::spawn("test-courier-panic", |x| {
            assert!(x != 13, "unlucky job");
            x
        });
        courier.submit(1);
        assert_eq!(courier.collect(), 1);
        courier.submit(13);
        let collected = catch_unwind(AssertUnwindSafe(|| courier.collect()));
        assert!(collected.is_err());
    }
}
