//! End-to-end acceptance for `khist serve`: the real binary, real Unix
//! sockets, concurrent producers, a live control plane, and the
//! serve ≡ watch bit-identity contract.
//!
//! Two scenarios:
//!
//! 1. **Throughput + identity** — two concurrent writers push 50 000
//!    keyed records over one data socket (disjoint key sets, so each
//!    stream's arrival order is well defined); `STATS` is polled
//!    mid-stream on the control socket; after `SHUTDOWN`, the per-stream
//!    JSONL is bit-identical (modulo `wall_seconds`, which is wall time)
//!    to `khist watch --key-field` over the same records — with the
//!    server sharded and the watch single-threaded, exercising the
//!    routing-is-invisible guarantee across the process boundary.
//! 2. **Error isolation** — one connection sends garbage and gets an
//!    `ERR line <n>` reply that poisons only itself; another disconnects
//!    mid-stream; a third keeps streaming unaffected and every record
//!    that made it through is accounted for.
//! 3. **Fleet rollup** — `FLEET` polled mid-stream answers one
//!    `{"fleet":true,…}` line; `SUB` receives interleaved fleet lines;
//!    the final poll is byte-identical to `khist watch --fleet`'s
//!    closing rollup over the same records; stdout never carries a
//!    fleet line.

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use khist::prelude::*;

const N: usize = 64;

/// A running `khist serve` child and its socket paths.
struct Server {
    child: Child,
    data: PathBuf,
    control: PathBuf,
}

impl Server {
    /// Spawns `khist serve` with uniformity analysis on `shards` shards
    /// and waits until both sockets accept connections.
    fn start(tag: &str, every: u64, shards: usize) -> Server {
        let dir = std::env::temp_dir();
        let unique = format!("khist-e2e-{}-{tag}", std::process::id());
        let data = dir.join(format!("{unique}.sock"));
        let control = dir.join(format!("{unique}-ctl.sock"));
        let child = Command::new(env!("CARGO_BIN_EXE_khist"))
            .args([
                "serve",
                "--socket",
                data.to_str().unwrap(),
                "--control",
                control.to_str().unwrap(),
                "--n",
                &N.to_string(),
                "--every",
                &every.to_string(),
                "--run",
                "uniformity",
                "--seed",
                "7",
                "--shards",
                &shards.to_string(),
                "--flush-ms",
                "20",
            ])
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn khist serve");
        let server = Server { child, data, control };
        // The first connect doubles as the readiness probe.
        drop(server.connect_data());
        server
    }

    fn connect(path: &Path) -> UnixStream {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match UnixStream::connect(path) {
                Ok(stream) => return stream,
                Err(e) if Instant::now() > deadline => {
                    panic!("connect {}: {e}", path.display())
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    fn connect_data(&self) -> UnixStream {
        Server::connect(&self.data)
    }

    fn connect_control(&self) -> UnixStream {
        Server::connect(&self.control)
    }

    /// Sends `SHUTDOWN`, waits for a clean exit, and returns the JSONL
    /// stdout. Also asserts the socket files were removed.
    fn shutdown(mut self, control: &mut Control) -> String {
        control.send("SHUTDOWN");
        let status = self.child.wait().expect("server exit");
        assert!(status.success(), "serve exited {status:?}");
        let mut out = String::new();
        self.child
            .stdout
            .take()
            .unwrap()
            .read_to_string(&mut out)
            .unwrap();
        assert!(!self.data.exists(), "data socket file removed on exit");
        assert!(!self.control.exists(), "control socket file removed on exit");
        out
    }
}

/// A control-plane connection: line-oriented request/reply.
struct Control {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Control {
    fn new(stream: UnixStream) -> Control {
        let reader = BufReader::new(stream.try_clone().unwrap());
        Control { writer: stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
    }

    fn request(&mut self, line: &str) -> String {
        self.send(line);
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        assert!(reply.ends_with('\n'), "truncated reply to {line}: {reply}");
        reply
    }

    /// Polls `STATS` until `pred` accepts the reply (drains are
    /// deadline-driven, so totals are eventually consistent).
    fn stats_until(&mut self, pred: impl Fn(&str) -> bool) -> String {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let reply = self.request("STATS");
            if pred(&reply) {
                return reply;
            }
            assert!(Instant::now() < deadline, "STATS never settled: {reply}");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// Pulls `"field":<integer>` out of a one-line JSON reply.
fn json_u64(reply: &str, field: &str) -> Option<u64> {
    let pat = format!("\"{field}\":");
    let rest = &reply[reply.find(&pat)? + pat.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Parses JSONL into per-stream report sequences with `wall_seconds`
/// zeroed — everything else must match bit for bit, so the comparison
/// re-serializes and compares strings.
fn per_stream_jsonl(jsonl: &str) -> Vec<(String, Vec<String>)> {
    let mut grouped: Vec<(String, Vec<String>)> = Vec::new();
    for line in jsonl.lines() {
        let mut report =
            WindowReport::from_json(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        for r in report.reports.iter_mut().chain(report.drift.iter_mut()) {
            r.wall_seconds = 0.0;
        }
        let key = report.stream.clone().expect("keyed reports carry a stream");
        let normalized = report.to_json();
        match grouped.iter_mut().find(|(k, _)| *k == key) {
            Some((_, lines)) => lines.push(normalized),
            None => grouped.push((key, vec![normalized])),
        }
    }
    grouped.sort_by(|a, b| a.0.cmp(&b.0));
    grouped
}

/// The records one writer sends: 25 000 lines round-robining over three
/// keys with the given prefix, values deterministic in the line index.
fn writer_lines(prefix: &str, mul: usize) -> String {
    let mut text = String::new();
    for i in 0..25_000 {
        text.push_str(&format!("{prefix}{} {}\n", i % 3, (i * mul + 1) % N));
    }
    text
}

#[test]
fn fifty_thousand_records_from_two_writers_match_watch_bit_for_bit() {
    let server = Server::start("identity", 2_000, 3);
    let mut control = Control::new(server.connect_control());

    let alpha = writer_lines("alpha", 7);
    let beta = writer_lines("beta", 11);
    std::thread::scope(|scope| {
        for text in [&alpha, &beta] {
            scope.spawn(|| {
                let mut conn = server.connect_data();
                // Write in awkward chunk sizes so record frames straddle
                // socket reads.
                for chunk in text.as_bytes().chunks(1_777) {
                    conn.write_all(chunk).unwrap();
                }
            });
        }
        // Mid-stream control plane: totals while both writers are live.
        let reply = control.stats_until(|r| json_u64(r, "records").unwrap_or(0) > 0);
        assert_eq!(json_u64(&reply, "shards"), Some(3), "{reply}");
    });

    // Writers are done; wait for every record to drain, then inspect one
    // stream mid-window before shutting down.
    let reply = control.stats_until(|r| json_u64(r, "records") == Some(50_000));
    assert_eq!(json_u64(&reply, "streams"), Some(6), "{reply}");
    let keyed = control.request("STATS alpha0");
    assert!(keyed.contains("\"key\":\"alpha0\""), "{keyed}");
    assert_eq!(json_u64(&keyed, "seen"), Some(8_334), "{keyed}");
    assert!(keyed.contains("\"ledger\":["), "{keyed}");

    let served = server.shutdown(&mut control);

    // The reference: the same records through `khist watch --key-field`,
    // single-threaded, concatenated writer-by-writer (per-stream order is
    // what matters, and the key sets are disjoint).
    let mut watch = Command::new(env!("CARGO_BIN_EXE_khist"))
        .args([
            "watch", "-", "--key-field", "0", "--n", &N.to_string(), "--every", "2000",
            "--run", "uniformity", "--seed", "7", "--json",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn khist watch");
    let mut stdin = watch.stdin.take().unwrap();
    stdin.write_all(alpha.as_bytes()).unwrap();
    stdin.write_all(beta.as_bytes()).unwrap();
    drop(stdin);
    let watched = watch.wait_with_output().expect("watch exit");
    assert!(watched.status.success());

    let served = per_stream_jsonl(&served);
    let watched = per_stream_jsonl(&String::from_utf8(watched.stdout).unwrap());
    assert_eq!(
        served.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
        ["alpha0", "alpha1", "alpha2", "beta0", "beta1", "beta2"],
    );
    for ((key, serve_lines), (_, watch_lines)) in served.iter().zip(&watched) {
        // 8 333–8 334 records per stream at every=2000: four complete
        // windows plus the flushed partial tail.
        assert_eq!(serve_lines.len(), 5, "stream {key}");
        assert_eq!(serve_lines, watch_lines, "stream {key} serve ≡ watch");
    }
}

#[test]
fn fleet_verb_matches_watch_fleet_byte_for_byte() {
    // 3 streams × 2 000 records at every=500: window boundaries land
    // exactly on the two write phases (2 then 4 complete windows per
    // stream, no partial tails), so both FLEET polls read a settled
    // rollup and the final one must equal watch --fleet's closing line.
    let keys = ["api", "web", "edge"];
    let mut phase1 = String::new();
    let mut phase2 = String::new();
    for i in 0..3_000usize {
        phase1.push_str(&format!("{} {}\n", keys[i % 3], (i * 7 + 1) % N));
        phase2.push_str(&format!("{} {}\n", keys[i % 3], (i * 11 + 2) % N));
    }

    let server = Server::start("fleet", 500, 3);
    let mut sub = Control::new(server.connect_control());
    let mut control = Control::new(server.connect_control());
    let ack = sub.request("SUB");
    assert!(ack.contains("\"subscribed\":true"), "{ack}");

    let mut data = server.connect_data();
    data.write_all(phase1.as_bytes()).unwrap();
    control.stats_until(|r| json_u64(r, "records") == Some(3_000));
    let mid = control.request("FLEET");
    assert!(FleetReport::is_fleet_line(&mid), "{mid}");
    let mid_report = FleetReport::from_json(mid.trim()).unwrap();
    assert_eq!(mid_report.streams, 3, "{mid}");
    assert_eq!(mid_report.windows_complete, 6, "2 windows per stream so far");
    assert_eq!(mid_report.records_seen, 3_000);
    assert_eq!(mid_report.windows_partial, 0, "mid-windows are not rolled up");

    data.write_all(phase2.as_bytes()).unwrap();
    drop(data);
    control.stats_until(|r| json_u64(r, "records") == Some(6_000));
    let fin = control.request("FLEET");
    let fin_report = FleetReport::from_json(fin.trim()).unwrap();
    assert_eq!(fin_report.windows_complete, 12);
    assert_eq!(fin_report.records_seen, 6_000);
    assert_ne!(fin.trim(), mid.trim(), "the rollup advanced between polls");

    // Shut down, then drain the subscription feed to EOF.
    let jsonl = server.shutdown(&mut control);
    let mut feed = String::new();
    sub.reader.read_to_string(&mut feed).unwrap();

    // stdout stays a pure per-stream window feed (per_stream_jsonl would
    // reject a fleet line; the explicit check makes the contract loud).
    assert!(jsonl.lines().all(|l| !FleetReport::is_fleet_line(l)));
    assert_eq!(per_stream_jsonl(&jsonl).len(), 3);

    // The subscriber saw interleaved fleet lines; the closing one is the
    // final poll, byte for byte (fleet lines carry no wall time).
    let fleet_lines: Vec<&str> = feed
        .lines()
        .filter(|l| FleetReport::is_fleet_line(l))
        .collect();
    assert!(fleet_lines.len() >= 2, "{feed}");
    assert_eq!(*fleet_lines.last().unwrap(), fin.trim());
    let windows = feed
        .lines()
        .filter(|l| !FleetReport::is_fleet_line(l))
        .filter(|l| l.contains("\"complete\":"))
        .count();
    assert_eq!(windows, 12, "the feed still carries every window line");

    // The reference: the same records through `khist watch --fleet`; its
    // closing rollup line must equal the server's final FLEET reply.
    let mut watch = Command::new(env!("CARGO_BIN_EXE_khist"))
        .args([
            "watch", "-", "--key-field", "0", "--n", &N.to_string(), "--every", "500",
            "--run", "uniformity", "--seed", "7", "--json", "--fleet",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn khist watch");
    let mut stdin = watch.stdin.take().unwrap();
    stdin.write_all(phase1.as_bytes()).unwrap();
    stdin.write_all(phase2.as_bytes()).unwrap();
    drop(stdin);
    let watched = watch.wait_with_output().expect("watch exit");
    assert!(watched.status.success());
    let watched = String::from_utf8(watched.stdout).unwrap();
    let closing = watched
        .lines()
        .rfind(|l| FleetReport::is_fleet_line(l))
        .expect("watch --fleet emits a closing rollup");
    assert_eq!(closing, fin.trim(), "serve FLEET ≡ watch --fleet, bit for bit");
}

#[test]
fn bad_lines_and_disconnects_poison_only_their_own_connection() {
    let server = Server::start("isolation", 100, 2);
    let mut control = Control::new(server.connect_control());

    // A healthy long-lived producer.
    let mut good = server.connect_data();
    for i in 0..230usize {
        good.write_all(format!("good {}\n", (i * 3) % N).as_bytes()).unwrap();
    }

    // A connection that sends one valid record, then garbage: the reply
    // names the offending line, the connection is closed, the record
    // before the garbage survives.
    let mut bad = server.connect_data();
    bad.write_all(b"evil 5\nthis is not a record\n").unwrap();
    let mut reply = String::new();
    BufReader::new(bad.try_clone().unwrap())
        .read_line(&mut reply)
        .unwrap();
    assert!(reply.starts_with("ERR line 2:"), "{reply}");
    let mut rest = Vec::new();
    bad.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server closes the poisoned connection");

    // A producer that disconnects mid-stream without ceremony.
    {
        let mut dropped = server.connect_data();
        for i in 0..150usize {
            dropped
                .write_all(format!("drop {}\n", (i * 5) % N).as_bytes())
                .unwrap();
        }
    }

    // Neither neighbor affects the healthy stream: it keeps writing and
    // everything that reached the engine is accounted for.
    control.stats_until(|r| json_u64(r, "records") == Some(381));
    for i in 0..50usize {
        good.write_all(format!("good {}\n", (i * 7) % N).as_bytes()).unwrap();
    }
    let reply = control.stats_until(|r| json_u64(r, "records") == Some(431));
    assert_eq!(json_u64(&reply, "streams"), Some(3), "{reply}");
    drop(good);

    let jsonl = server.shutdown(&mut control);
    let streams = per_stream_jsonl(&jsonl);
    let of = |key: &str| -> Vec<WindowReport> {
        jsonl
            .lines()
            .map(|l| WindowReport::from_json(l).unwrap())
            .filter(|w| w.stream.as_deref() == Some(key))
            .collect()
    };
    assert_eq!(
        streams.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
        ["drop", "evil", "good"],
    );
    let good_windows = of("good");
    assert_eq!(good_windows.len(), 3, "280 records at every=100");
    assert!(good_windows[0].complete && good_windows[1].complete);
    assert_eq!(good_windows[2].seen, 80, "flushed tail");
    let drop_windows = of("drop");
    assert_eq!(drop_windows.len(), 2, "disconnected stream still reported");
    assert_eq!(drop_windows[1].seen, 50, "records up to the disconnect kept");
    assert_eq!(of("evil").len(), 1, "the record before the garbage survives");
    assert_eq!(of("evil")[0].seen, 1);
}
