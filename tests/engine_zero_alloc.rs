//! Proof that the warm keyed ingest path is allocation-free.
//!
//! PR 7's pipeline contract: once every stream key has debuted and every
//! scratch buffer has grown to the workload's high-water mark, a call to
//! `Engine::ingest_batch` that completes no window performs **zero** heap
//! allocations — on the caller thread and on every shard worker. This file
//! installs a counting global allocator and measures the delta directly.
//!
//! The counter is process-global, so this file holds exactly one `#[test]`
//! (integration tests are separate binaries; within one binary the default
//! harness would interleave tests on multiple threads and contaminate the
//! count). Shard counts 1 (inline path), 2 and 4 (persistent-worker path)
//! are exercised sequentially inside that single test, each with a batch
//! large enough to engage the parallel route fan-out
//! (`Engine::PARALLEL_ROUTE_MIN`) *and* a small batch that routes serially
//! on the caller thread — both paths must be allocation-free warm.

use alloc_counter::CountingAllocator;
use khist::prelude::*;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Standing analyses: one of each draw shape, small explicit budgets.
fn standing() -> Vec<Analysis> {
    vec![
        TestL2::k(3)
            .eps(0.3)
            .budget(L2TesterBudget { r: 6, m: 40 })
            .into(),
        Uniformity::eps(0.3)
            .budget(UniformityBudget { m: 60 })
            .into(),
    ]
}

const KEYS: [&str; 8] = [
    "api", "web", "batch", "edge", "cron", "etl", "mobile", "backfill",
];

/// One batch of keyed records: round-robin keys, values sweeping the
/// domain. Identical every call, so a warm replay touches no new state.
fn batch(n: usize, records: usize) -> Vec<(&'static str, usize)> {
    (0..records)
        .map(|i| (KEYS[i % KEYS.len()], (i * 7 + i / 3) % n))
        .collect()
}

fn engine(shards: usize) -> Engine {
    Engine::builder(64)
        .seed(0xA110C)
        .shards(shards)
        // A span far beyond what the test feeds: no window ever completes,
        // so the measured calls stay on the pure ingest path.
        .tumbling(1_000_000_000)
        .analyses(standing())
        .build()
        .unwrap()
}

#[test]
fn warm_ingest_batch_allocates_nothing() {
    // The large batch crosses `Engine::PARALLEL_ROUTE_MIN`, so multi-shard
    // engines route it through the parallel chunk fan-out; the small batch
    // stays below the threshold and routes serially on the caller thread.
    // Both paths must be allocation-free once warm.
    let large = batch(64, Engine::PARALLEL_ROUTE_MIN * 4);
    let small = batch(64, Engine::PARALLEL_ROUTE_MIN / 4);
    assert!(large.len() >= Engine::PARALLEL_ROUTE_MIN);
    assert!(small.len() < Engine::PARALLEL_ROUTE_MIN);
    for shards in [1usize, 2, 4] {
        for (path, records) in [("parallel", &large), ("serial", &small)] {
            let mut engine = engine(shards);
            // Warm-up: debut every key, push every reservoir past its fill
            // phase, and let every scratch buffer (partitions, route-chunk
            // arenas and buckets, counting-sort slots, mailbox round-trip
            // buffers) reach steady-state capacity.
            for _ in 0..3 {
                let reports = engine.ingest_batch(records).unwrap();
                assert!(reports.is_empty(), "span must outlast the test feed");
            }

            let before = ALLOC.allocations();
            let reports = engine.ingest_batch(records).unwrap();
            let delta = ALLOC.allocations() - before;
            assert!(reports.is_empty(), "span must outlast the test feed");
            assert_eq!(
                delta, 0,
                "warm {path}-route ingest_batch on {shards} shard(s) performed \
                 {delta} heap allocation(s); the warm path must not allocate"
            );
        }
    }
}
