//! Push≡pull determinism and the Monitor's acceptance criteria.
//!
//! The streaming redesign's contract: a record stream *pushed* through
//! `Monitor::ingest` (tumbling windows) produces reports **bit-identical**
//! to *pulling* the same records from a file through
//! `Session::open_records` with the same seed — push and pull are two
//! transports for one sampling process. On top of that:
//!
//! * a multi-analysis snapshot performs zero oracle draws beyond the
//!   frozen window (ledger-asserted);
//! * a million-event stream runs in budget-bounded memory;
//! * drift reports replay bit-identically under a fixed seed.

use khist::prelude::*;
use proptest::prelude::*;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};

/// Writes records to a unique temp file; returns its path.
fn temp_records(records: &[usize], tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!(
        "khist-pushpull-{tag}-{}-{unique}.txt",
        std::process::id()
    ));
    let mut f = std::fs::File::create(&path).expect("temp file writable");
    for &r in records {
        writeln!(f, "{r}").unwrap();
    }
    path
}

/// The standing batch both transports run: learner (weighted draw_batch
/// lanes) + ℓ₂ tester (set lanes) + uniformity (main lane) — all three
/// draw shapes exercised at once.
fn batch(n: usize) -> Vec<Analysis> {
    let _ = n;
    vec![
        Learn::k(3).eps(0.25).scale(0.05).into(),
        TestL2::k(3).eps(0.3).scale(0.05).into(),
        Uniformity::eps(0.3).scale(0.2).into(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite: `Monitor::ingest` over a record stream yields
    /// bit-identical reports to `Session::open_records` on the same file
    /// and seed (acceptance criterion).
    #[test]
    fn prop_pushed_window_equals_pulled_file(
        records in proptest::collection::vec(0usize..32, 300..900),
        seed in 0u64..u64::MAX,
    ) {
        let n = 32;
        // Push: one tumbling window spanning the whole stream.
        let mut monitor = Monitor::builder(n)
            .seed(seed)
            .tumbling(records.len() as u64)
            .analyses(batch(n))
            .build()
            .unwrap();
        let mut windows = monitor.ingest(&records).unwrap();
        prop_assert_eq!(windows.len(), 1);
        let pushed = windows.pop().unwrap();
        prop_assert!(pushed.complete);
        prop_assert_eq!(pushed.seen, records.len() as u64);

        // Pull: the same records as a file, the same batch and seed.
        let path = temp_records(&records, "prop");
        let mut session = Session::open_records(&path, n, seed).unwrap();
        let pulled = session.run(&batch(n)).unwrap();
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(&pushed.reports, &pulled);
    }

    /// Drift reports are bit-identical under replay with a fixed seed
    /// (acceptance criterion), and a different seed changes the sampling.
    #[test]
    fn prop_drift_reports_replay_bit_identically(
        records in proptest::collection::vec(0usize..32, 600..1000),
        seed in 0u64..u64::MAX,
    ) {
        let span = (records.len() / 2) as u64;
        let run = |seed: u64| {
            let mut monitor = Monitor::builder(32)
                .seed(seed)
                .tumbling(span)
                .analyses(batch(32))
                .build()
                .unwrap();
            monitor.ingest(&records).unwrap()
        };
        let (a, b) = (run(seed), run(seed));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), 2);
        prop_assert!(a[1].drift.is_some(), "second window carries drift");
        // A different seed resamples (reports may or may not differ, but
        // the recorded seed always does).
        let c = run(seed ^ 1);
        prop_assert!(c[0].reports[0].seed != a[0].reports[0].seed);
    }
}

/// Acceptance criterion: a 1M-event stream runs in budget-bounded memory
/// and a {learn, l2, uniformity} snapshot performs zero new oracle draws
/// beyond the frozen window, asserted via the ledger.
#[test]
fn million_event_stream_is_budget_bounded_and_draw_free() {
    let n = 64;
    let span = 100_000u64;
    let standing: Vec<Analysis> = vec![
        Learn::k(4).eps(0.25).scale(0.02).into(),
        TestL2::k(4).eps(0.3).scale(0.02).into(),
        Uniformity::eps(0.3).scale(0.1).into(),
    ];
    let mut monitor = Monitor::builder(n)
        .seed(42)
        .tumbling(span)
        .analyses(standing.clone())
        .build()
        .unwrap();
    let budget = monitor.plan().total_samples().unwrap();

    // 1M synthetic events, pushed in arrival-sized chunks. The monitor
    // may hold at most `budget` samples at any time; the stream itself is
    // never stored.
    let p = khist::dist::generators::staircase(n, 4).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    use rand::SeedableRng;
    let mut windows = Vec::new();
    for _ in 0..200 {
        let chunk = p.sample_many(5_000, &mut rng);
        windows.extend(monitor.ingest(&chunk).unwrap());
    }
    assert_eq!(monitor.seen(), 1_000_000);
    assert_eq!(windows.len(), 10);
    for window in &windows {
        assert!(
            window.kept as usize <= budget,
            "window kept {} > budget {budget}",
            window.kept
        );
    }

    // Zero new draws beyond the frozen windows: the ledger shows exactly
    // one freeze-"draw" per window, sized to the window's kept samples —
    // and the engine consumed the frozen lanes exactly (an extra draw
    // would have panicked the replay oracle).
    let draws: Vec<_> = monitor
        .ledger()
        .iter()
        .filter(|e| e.label == "draw")
        .collect();
    assert_eq!(draws.len(), windows.len());
    for (entry, window) in draws.iter().zip(&windows) {
        assert_eq!(entry.samples as u64, window.kept);
    }
    // Per-window ledger: 1 draw + one entry per standing analysis.
    assert_eq!(
        monitor.ledger().len(),
        windows.len() * (1 + standing.len())
    );
    // Drift is reported from the second window on.
    assert!(windows[0].drift.is_none());
    assert!(windows[1..].iter().all(|w| w.drift.is_some()));
}

/// The pushed window's JSON survives the CLI's JSONL round trip.
#[test]
fn window_reports_round_trip_through_json() {
    let mut monitor = Monitor::builder(16)
        .seed(5)
        .tumbling(500)
        .analyses(vec![Uniformity::eps(0.3).scale(0.5).into()])
        .build()
        .unwrap();
    let records: Vec<usize> = (0..1200).map(|i| (i * 13 + 5) % 16).collect();
    let mut windows = monitor.ingest(&records).unwrap();
    windows.extend(monitor.flush().unwrap());
    assert_eq!(windows.len(), 3);
    assert!(!windows[2].complete, "flushed tail is partial");
    for window in windows {
        let line = window.to_json();
        assert!(!line.contains('\n'), "JSONL must be one line: {line}");
        assert_eq!(WindowReport::from_json(&line).unwrap(), window);
    }
}
