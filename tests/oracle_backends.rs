//! Integration tests of the `SampleOracle` seam: the same generic
//! algorithm code must behave identically across backends, and the
//! streaming record-file path must carry the full CLI workflow end to end.

use khist::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;

/// Writes samples to a unique temp record file; returns its path.
fn temp_records(samples: &[usize], tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "khist-it-{tag}-{}.txt",
        std::process::id()
    ));
    let mut f = std::fs::File::create(&path).expect("temp file writable");
    writeln!(f, "# integration test data").unwrap();
    for &s in samples {
        writeln!(f, "{s}").unwrap();
    }
    path
}

#[test]
fn replay_of_dense_draws_reproduces_learner_outcome() {
    // Capture a DenseOracle workload, replay it, and check the learner is a
    // deterministic function of the oracle: identical tilings, bit for bit.
    let p = khist::dist::generators::two_level(64, 0.25, 0.75).unwrap();
    let budget = LearnerBudget::calibrated(64, 2, 0.15, 0.02).unwrap();
    let params = GreedyParams::fast(2, 0.15, budget);

    let mut dense = DenseOracle::new(&p, 99);
    let mut sizes = vec![budget.ell];
    sizes.resize(budget.r + 1, budget.m);
    let recorded = dense.draw_batch(&sizes);

    let mut live = DenseOracle::new(&p, 99);
    let from_live = learn(&mut live, &params).unwrap();
    let mut replay = ReplayOracle::from_sets(64, recorded);
    let from_replay = learn(&mut replay, &params).unwrap();

    assert_eq!(from_live.stats, from_replay.stats);
    for i in 0..64 {
        assert_eq!(from_live.tiling.evaluate(i), from_replay.tiling.evaluate(i));
    }
}

#[test]
fn generic_entry_points_accept_dyn_oracles() {
    // The seam is object-safe: algorithms run over `&mut dyn SampleOracle`,
    // the shape a runtime-selected backend registry would use.
    let p = khist::dist::generators::staircase(64, 4).unwrap();
    let mut dense = DenseOracle::new(&p, 5);
    let oracle: &mut dyn SampleOracle = &mut dense;
    let budget = L2TesterBudget::calibrated(64, 0.25, 0.05).unwrap();
    let report = test_l2(oracle, 4, 0.25, budget).unwrap();
    assert_eq!(report.samples_used, budget.r * budget.m);
}

#[test]
fn record_file_learner_recovers_two_level_histogram() {
    // End-to-end through the streaming backend: synthesize a record file,
    // learn via RecordFileOracle, and expect the two-level structure back.
    let mut rng = StdRng::seed_from_u64(31);
    let p = khist::dist::generators::two_level(64, 0.25, 0.75).unwrap();
    let path = temp_records(&p.sample_many(40_000, &mut rng), "learn");

    let mut oracle = RecordFileOracle::open(&path, 64, 17).unwrap();
    let available = oracle.records() as usize;
    let report = khist::app::run_learn_with(&mut oracle, 2, 0.15, available, 17).unwrap();
    let report = khist::app::render_learn(&report);
    assert!(report.contains("2-piece"), "report: {report}");
    let found = (14..=18).any(|b| report.contains(&format!("{b}]")));
    assert!(found, "no boundary near 16 in: {report}");

    std::fs::remove_file(&path).ok();
}

#[test]
fn record_file_and_replay_testers_agree_on_clear_instances() {
    let mut rng = StdRng::seed_from_u64(7);
    for (dist, expect_accept) in [
        (khist::dist::generators::staircase(64, 4).unwrap(), true),
        (khist::dist::generators::spike_comb(64, 8).unwrap(), false),
    ] {
        let samples = dist.sample_many(80_000, &mut rng);
        let path = temp_records(&samples, "agree");

        let mut streaming = RecordFileOracle::open(&path, 64, 3).unwrap();
        let verdict_file =
            khist::app::run_test_with(&mut streaming, 4, 0.25, "l2", samples.len(), 3)
                .map(|r| khist::app::render_test(&r, 4))
                .unwrap();
        let verdict_mem = khist::app::run_test(&samples, 4, 0.25, 64, "l2").unwrap();

        let want = if expect_accept { "Accept" } else { "Reject" };
        assert!(verdict_file.contains(want), "file path: {verdict_file}");
        assert!(verdict_mem.contains(want), "mem path: {verdict_mem}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn record_file_oracle_memory_is_budget_bounded() {
    // The acceptance-criterion shape in miniature: the reservoirs hold at
    // most the requested sample counts no matter how long the file is, so
    // learn never materializes the record stream.
    let mut rng = StdRng::seed_from_u64(13);
    let p = khist::dist::generators::zipf(128, 1.1).unwrap();
    let samples = p.sample_many(120_000, &mut rng);
    let path = temp_records(&samples, "bounded");

    let mut oracle = RecordFileOracle::open(&path, 128, 1).unwrap();
    assert_eq!(oracle.records(), 120_000);
    // Request far less than the file holds: the draw is exactly the
    // requested size (uniform subsample), not the file size.
    let sets = oracle.draw_batch(&[2_000, 500, 500, 500]);
    assert_eq!(
        sets.iter().map(|s| s.total()).collect::<Vec<_>>(),
        vec![2_000, 500, 500, 500]
    );
    std::fs::remove_file(&path).ok();
}
