//! End-to-end learning tests: Theorems 1 and 2 across workload families.
//!
//! Each test draws samples from a known distribution, runs the greedy
//! learner, and checks the additive-gap guarantee against the exact
//! v-optimal DP. Budgets are calibrated (same formulas, smaller constants),
//! so the observed gaps should be far inside the theoretical `5ε`/`8ε`.

use khist::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn gap_for(
    p: &khist::dist::DenseDistribution,
    k: usize,
    eps: f64,
    scale: f64,
    policy: CandidatePolicy,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let budget = LearnerBudget::calibrated(p.n(), k, eps, scale).unwrap();
    let params = GreedyParams {
        k,
        eps,
        budget,
        policy,
        max_endpoints: 96,
    };
    let mut oracle = DenseOracle::new(p, rand::Rng::random(&mut rng));
    let out = learn(&mut oracle, &params).unwrap();
    let opt = v_optimal(p, k).unwrap().sse;
    out.tiling.l2_sq_to(p) - opt
}

#[test]
fn theorem1_bound_across_workloads() {
    let eps = 0.1;
    let n = 128;
    let workloads: Vec<(&str, khist::dist::DenseDistribution)> = vec![
        ("zipf", khist::dist::generators::zipf(n, 1.0).unwrap()),
        (
            "gauss",
            khist::dist::generators::discrete_gaussian(n, 64.0, 14.0).unwrap(),
        ),
        (
            "staircase",
            khist::dist::generators::staircase(n, 4).unwrap(),
        ),
        (
            "two_level",
            khist::dist::generators::two_level(n, 0.2, 0.8).unwrap(),
        ),
    ];
    for (name, p) in &workloads {
        let gap = gap_for(p, 4, eps, 0.05, CandidatePolicy::All, 42);
        assert!(gap <= 5.0 * eps, "{name}: gap {gap} exceeds 5ε");
        // calibrated budgets should do far better than the worst case
        assert!(gap <= 0.05, "{name}: gap {gap} suspiciously large");
    }
}

#[test]
fn theorem2_bound_with_sample_endpoints() {
    let eps = 0.1;
    let n = 256;
    let mut rng = StdRng::seed_from_u64(1);
    for trial in 0..3u64 {
        let (_, p) =
            khist::dist::generators::random_tiling_histogram_distinct(n, 5, &mut rng).unwrap();
        let gap = gap_for(
            &p,
            5,
            eps,
            0.02,
            CandidatePolicy::SampleEndpoints,
            7 + trial,
        );
        assert!(gap <= 8.0 * eps, "trial {trial}: gap {gap} exceeds 8ε");
    }
}

#[test]
fn fast_policy_quality_close_to_exhaustive() {
    let p = khist::dist::generators::discrete_gaussian(192, 90.0, 25.0).unwrap();
    let slow_gap = gap_for(&p, 5, 0.1, 0.02, CandidatePolicy::All, 9);
    let fast_gap = gap_for(&p, 5, 0.1, 0.02, CandidatePolicy::SampleEndpoints, 9);
    // Theorem 2 allows +3ε degradation; calibrated runs should stay close.
    assert!(
        fast_gap <= slow_gap + 0.3,
        "fast gap {fast_gap} much worse than exhaustive {slow_gap}"
    );
}

#[test]
fn gap_shrinks_with_budget() {
    let p = khist::dist::generators::zipf(128, 1.3).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let mut avg = |scale: f64| -> f64 {
        (0..5)
            .map(|i| {
                let budget = LearnerBudget::calibrated(128, 4, 0.1, scale).unwrap();
                let params = GreedyParams::new(4, 0.1, budget);
                let _ = i;
                let mut oracle = DenseOracle::new(&p, rand::Rng::random(&mut rng));
                let out = learn(&mut oracle, &params).unwrap();
                out.tiling.l2_sq_to(&p)
            })
            .sum::<f64>()
            / 5.0
    };
    let coarse = avg(0.002);
    let fine = avg(0.08);
    assert!(
        fine <= coarse + 1e-4,
        "error should not grow with budget: coarse {coarse}, fine {fine}"
    );
}

#[test]
fn learner_beats_naive_equal_partition_on_skew() {
    let p = khist::dist::generators::zipf(256, 1.5).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let budget = LearnerBudget::calibrated(256, 6, 0.1, 0.02).unwrap();
    let params = GreedyParams::fast(6, 0.1, budget);
    let mut oracle = DenseOracle::new(&p, rand::Rng::random(&mut rng));
    let learned = learn(&mut oracle, &params).unwrap().tiling.l2_sq_to(&p);
    let ew = equi_width(&p, 6).unwrap().l2_sq_to(&p);
    assert!(
        learned < ew,
        "learned {learned} should beat equi-width {ew} on zipf"
    );
}

#[test]
fn priority_and_tiling_representations_agree() {
    let p = khist::dist::generators::discrete_gaussian(96, 40.0, 12.0).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let budget = LearnerBudget::calibrated(96, 4, 0.15, 0.05).unwrap();
    let params = GreedyParams::new(4, 0.15, budget);
    let mut oracle = DenseOracle::new(&p, rand::Rng::random(&mut rng));
    let out = learn(&mut oracle, &params).unwrap();
    let from_priority = out.priority.to_tiling(96).unwrap();
    for i in 0..96 {
        assert!(
            (from_priority.evaluate(i) - out.tiling.evaluate(i)).abs() < 1e-12,
            "representations disagree at {i}"
        );
    }
    // Piece-count bound: the tiling grows by ≤ 2 pieces per iteration.
    assert!(out.tiling.piece_count() <= 2 * out.stats.iterations + 1);
}

#[test]
fn learn_from_samples_accepts_real_data() {
    // Feed raw "log data" (samples, not a distribution) through the
    // from-samples entry point.
    let p = khist::dist::generators::two_level(64, 0.25, 0.75).unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    let budget = LearnerBudget::calibrated(64, 2, 0.15, 0.05).unwrap();
    let main = SampleSet::draw(&p, budget.ell, &mut rng);
    let sets: Vec<SampleSet> = (0..budget.r)
        .map(|_| SampleSet::draw(&p, budget.m, &mut rng))
        .collect();
    let params = GreedyParams::new(2, 0.15, budget);
    let out = khist::greedy::learn_from_samples(64, &main, &sets, &params).unwrap();
    assert!(out.tiling.l2_sq_to(&p) < 0.02);
    assert_eq!(out.stats.samples_used, budget.ell + budget.r * budget.m);
}
