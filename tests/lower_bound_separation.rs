//! The Theorem 5 separation, end to end: the ensemble fools the tester at
//! tiny budgets and is caught at √(kn)-scale budgets.

use khist::lower_bound::{distinguishing_rate, CollisionDistinguisher};
use khist::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn l1_tester_separates_the_ensemble() {
    let n = 128;
    let k = 4;
    let eps = 0.4;
    let budget = L1TesterBudget::calibrated(n, k, eps, 0.02).unwrap();
    let mut rng = StdRng::seed_from_u64(1);

    let yes = khist::dist::generators::yes_instance(n, k).unwrap();
    let mut yes_accepts = 0;
    for _ in 0..7 {
        let mut oracle = DenseOracle::new(&yes.dist, rand::Rng::random(&mut rng));
        if test_l1(&mut oracle, k, eps, budget)
            .unwrap()
            .outcome
            .is_accept()
        {
            yes_accepts += 1;
        }
    }
    assert!(yes_accepts >= 5, "YES accepted only {yes_accepts}/7");

    let mut no_rejects = 0;
    for _ in 0..7 {
        let no = khist::dist::generators::no_instance(n, k, &mut rng).unwrap();
        let mut oracle = DenseOracle::new(&no.dist, rand::Rng::random(&mut rng));
        if !test_l1(&mut oracle, k, eps, budget)
            .unwrap()
            .outcome
            .is_accept()
        {
            no_rejects += 1;
        }
    }
    assert!(no_rejects >= 5, "NO rejected only {no_rejects}/7");
}

#[test]
fn ensemble_is_information_theoretically_hard_at_low_budget() {
    // With a budget far below √(kn), even the bespoke collision
    // distinguisher (which knows the partition!) stays near chance.
    let n = 4096;
    let k = 8;
    let sqrt_kn = ((n * k) as f64).sqrt() as usize; // ≈ 181
    let tiny = sqrt_kn / 16; // ≈ 11 samples
    let d = CollisionDistinguisher::default();
    let mut rng = StdRng::seed_from_u64(2);
    let rate = distinguishing_rate(n, k, tiny, 300, &d, &mut rng).unwrap();
    assert!(
        rate < 0.72,
        "rate {rate} too high at budget {tiny} ≪ √(kn) = {sqrt_kn}"
    );
}

#[test]
fn ensemble_is_distinguishable_above_threshold() {
    let n = 4096;
    let k = 8;
    let sqrt_kn = ((n * k) as f64).sqrt() as usize;
    let generous = sqrt_kn * 40;
    let d = CollisionDistinguisher::default();
    let mut rng = StdRng::seed_from_u64(3);
    let rate = distinguishing_rate(n, k, generous, 120, &d, &mut rng).unwrap();
    assert!(
        rate > 0.9,
        "rate {rate} too low at budget {generous} ≫ √(kn)"
    );
}

#[test]
fn threshold_grows_with_sqrt_nk_shape() {
    // Coarse two-point exponent check (the full sweep is experiment E5):
    // quadrupling n·k should roughly double the threshold.
    let d = CollisionDistinguisher::default();
    let mut rng = StdRng::seed_from_u64(4);
    let m_small = khist::lower_bound::threshold_samples(256, 4, 0.8, 80, &d, &mut rng).unwrap();
    let m_large = khist::lower_bound::threshold_samples(1024, 4, 0.8, 80, &d, &mut rng).unwrap();
    let ratio = m_large as f64 / m_small as f64;
    assert!(
        ratio > 1.2 && ratio < 8.0,
        "threshold ratio {ratio} wildly off the √4 = 2 prediction ({m_small} → {m_large})"
    );
}

#[test]
fn yes_and_no_have_identical_bucket_marginals() {
    // The lower bound's indistinguishability hinges on identical
    // bucket-level statistics; verify the construction delivers that.
    let mut rng = StdRng::seed_from_u64(5);
    let yes = khist::dist::generators::yes_instance(240, 6).unwrap();
    let no = khist::dist::generators::no_instance(240, 6, &mut rng).unwrap();
    for (a, b) in yes.partition.iter().zip(&no.partition) {
        assert_eq!(a, b);
        assert!(
            (yes.dist.interval_mass(*a) - no.dist.interval_mass(*b)).abs() < 1e-9,
            "bucket {a} marginal differs"
        );
    }
}
