//! Consistent-hash routing: the `Engine`'s virtual-node ring acceptance
//! criteria.
//!
//! Two properties anchor the ring design. First, **routing is invisible**:
//! a stream's reports are bit-identical at every ring size (1, 2, 4, 8
//! shards) and across any resize history, because `stream_seed` derives
//! from the key alone and migration moves `MonitorState`s without
//! touching them. Second, **resizing is cheap**: growing N → N+1 shards
//! migrates at most 2/(N+1) of live streams (expected ~1/(N+1); the
//! factor 2 absorbs virtual-node placement variance), where the old
//! `hash mod N` routing would have re-keyed (N-1)/N of them.

use khist::prelude::*;
use proptest::prelude::*;

const N: usize = 32;

/// A cheap standing batch — these tests exercise routing, not analysis.
fn batch() -> Vec<Analysis> {
    vec![Uniformity::eps(0.3).budget(UniformityBudget { m: 40 }).into()]
}

fn engine(shards: usize, span: u64) -> Engine {
    Engine::builder(N)
        .seed(11)
        .shards(shards)
        .tumbling(span)
        .analyses(batch())
        .build()
        .unwrap()
}

/// Interleaved records over `streams` distinct keys, salted so every
/// proptest case routes a fresh key population.
fn population(streams: usize, salt: u64) -> Vec<(String, usize)> {
    (0..streams)
        .map(|i| (format!("tenant-{salt:016x}-{i}"), i % N))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Acceptance criterion: growing the ring N → N+1 migrates at most
    /// 2/(N+1) of live streams, for every N in {2, 4, 8} over ~2 000
    /// streams — and shrinking straight back returns exactly the streams
    /// that left (the ring for N shards is a prefix of the ring for N+1,
    /// so the old owners are still there).
    #[test]
    fn prop_growing_the_ring_migrates_at_most_two_over_n_plus_one(salt in 0u64..u64::MAX) {
        let streams = 2_000usize;
        let keyed = population(streams, salt);
        for n in [2usize, 4, 8] {
            let mut engine = engine(n, 1_000_000);
            engine.ingest_batch(&keyed).unwrap();
            prop_assert_eq!(engine.stream_count(), streams);

            let moved = engine.resize(n + 1).unwrap();
            prop_assert!(
                moved * (n + 1) <= 2 * streams,
                "{} -> {} shards moved {} of {} streams (bound {})",
                n, n + 1, moved, streams, 2 * streams / (n + 1)
            );
            // The new shard is not starved either: consistent hashing
            // still spreads load (expected streams/(n+1) arrivals).
            prop_assert!(
                moved * (n + 1) * 2 >= streams,
                "{} -> {} shards moved only {} streams", n, n + 1, moved
            );
            prop_assert_eq!(engine.resize(n).unwrap(), moved, "shrink undoes the grow");
        }
    }
}

/// Acceptance criterion: per-stream reports — completed windows and
/// flushed tails alike — are bit-identical at ring sizes 1, 2, 4, and 8.
/// With identical batch boundaries the whole sorted interleaving matches,
/// so the comparison is exact output equality, not per-stream filtering.
#[test]
fn reports_bit_identical_across_ring_sizes_1_2_4_8() {
    let keys = ["api", "web", "batch", "edge", "ops"];
    let keyed: Vec<(String, usize)> = (0..4_000)
        .map(|i| (keys[(i * 13) % keys.len()].to_string(), (i * 7) % N))
        .collect();
    let run = |shards: usize| {
        let mut engine = engine(shards, 300);
        let mut out = engine.ingest_batch(&keyed[..1_500]).unwrap();
        out.extend(engine.ingest_batch(&keyed[1_500..]).unwrap());
        out.extend(engine.flush().unwrap());
        out
    };
    let reference = run(1);
    assert!(
        reference.iter().any(|w| w.complete) && reference.iter().any(|w| !w.complete),
        "fixture covers both completed windows and partial tails"
    );
    for shards in [2usize, 4, 8] {
        assert_eq!(run(shards), reference, "ring size {shards}");
    }
}

/// Resizing mid-stream is invisible in the reports: ingest half on 2
/// shards, grow to 5, drain the rest — bit-identical to a never-resized
/// single-shard engine with the same batch boundaries.
#[test]
fn resize_mid_stream_preserves_reports() {
    let keys = ["api", "web", "batch"];
    let keyed: Vec<(String, usize)> = (0..3_000)
        .map(|i| (keys[(i * 5) % keys.len()].to_string(), (i * 11) % N))
        .collect();
    let run = |resize_to: Option<usize>| {
        let mut engine = engine(2, 400);
        let mut out = engine.ingest_batch(&keyed[..1_300]).unwrap();
        if let Some(shards) = resize_to {
            engine.resize(shards).unwrap();
        }
        out.extend(engine.ingest_batch(&keyed[1_300..]).unwrap());
        out.extend(engine.flush().unwrap());
        out
    };
    assert_eq!(run(Some(5)), run(None), "grow mid-stream");
    assert_eq!(run(Some(1)), run(None), "collapse to one shard mid-stream");
}

/// The single-shard ring is a working degenerate case: everything routes
/// to shard 0, resizing to the same size is a no-op, and resizing to zero
/// is rejected.
#[test]
fn single_shard_ring_degenerates_cleanly() {
    let mut engine = engine(1, 500);
    let keyed = population(50, 0xdead);
    engine.ingest_batch(&keyed).unwrap();
    assert_eq!(engine.stream_count(), 50);
    assert_eq!(engine.shards(), 1);
    assert_eq!(engine.resize(1).unwrap(), 0, "same-size resize moves nothing");
    assert!(engine.resize(0).is_err(), "zero shards is rejected");
    // Growing from one shard still obeys the migration bound.
    let moved = engine.resize(2).unwrap();
    assert!(moved <= 50, "{moved} of 50 moved");
    assert_eq!(engine.shards(), 2);
    assert_eq!(engine.stream_count(), 50, "no stream lost in migration");
}
