//! Tier-1 gate: the workspace must be clean under its own static-analysis
//! pass. Runs as part of plain `cargo test`, so a determinism/purity/no-panic
//! regression fails the build even when CI's dedicated `static-analysis` job
//! is not in the loop.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    // CARGO_MANIFEST_DIR for the root `khist` package IS the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = khist_lint::lint_workspace(root).expect("walking the workspace");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — did the walker break?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        report.is_clean(),
        "khist-lint found {} diagnostic(s):\n{}",
        rendered.len(),
        rendered.join("\n")
    );
}
