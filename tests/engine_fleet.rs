//! Fleet rollups are shard-free: the acceptance criteria for
//! `Engine::fleet_report` and `FleetSummary::merge`.
//!
//! The engine composes its fleet report by folding per-shard
//! `FleetSummary` partials, so two properties carry the whole feature:
//! the fold must be associative and commutative **at the bit level** (any
//! shard count, any merge grouping, any resize history collapses to the
//! same state), and the end-to-end `FleetReport` must be bit-identical
//! for shards ∈ {1, 2, 4, 8} over the same keyed records — the fleet
//! analogue of `tests/engine_sharding.rs`.

use khist::fleet::{FleetSummary, WindowObservation};
use khist::prelude::*;
use proptest::prelude::*;

/// The standing batch every stream runs (same shapes as the sharding
/// test: weighted, set, and main lanes all exercised), with explicit
/// small budgets so short windows always fill every lane.
fn batch() -> Vec<Analysis> {
    let mut learner = LearnerBudget::calibrated(32, 3, 0.25, 1.0).unwrap();
    learner.ell = 80;
    learner.r = 6;
    learner.m = 30;
    vec![
        Learn::k(3).eps(0.25).budget(learner).into(),
        TestL2::k(3)
            .eps(0.3)
            .budget(L2TesterBudget { r: 6, m: 40 })
            .into(),
        Uniformity::eps(0.3)
            .budget(UniformityBudget { m: 60 })
            .into(),
    ]
}

const KEYS: [&str; 4] = ["api", "web", "batch", "edge"];

/// Raw material for one arbitrary window observation, as a 4-tuple the
/// vendored proptest shim can generate (it offers range and tuple
/// strategies only — flags and optional fields are decoded from `bits`).
type RawObs = (u32, u64, u64, u64);

fn raw_observation() -> impl Strategy<Value = RawObs> {
    (0u32..16, 0u64..8, 0u64..500, 0u64..100_000)
}

/// Decodes a raw tuple into a caller-contract-respecting observation.
/// Drift scores are present ~70% of the time so partials routinely cross
/// the sketch's exact→binned collapse boundary when merged.
fn decode(raw: RawObs) -> WindowObservation {
    let (debut, window, seen, bits) = raw;
    let alarmed = bits & 2 != 0;
    let verdicts = ((bits >> 3) % 4) as u32;
    WindowObservation {
        debut,
        window,
        seen,
        kept: seen / 3,
        complete: bits & 1 != 0,
        alarmed,
        first_alarm: alarmed && bits & 4 != 0,
        verdicts,
        rejects: (((bits >> 5) % 4) as u32).min(verdicts),
        drift_score: (bits % 10 < 7).then(|| (bits % 4_999 + 1) as f64 * 1e-3),
    }
}

fn summarize(debuts: u32, observations: &[RawObs]) -> FleetSummary {
    let mut s = FleetSummary::new();
    for _ in 0..debuts {
        s.observe_debut();
    }
    for &o in observations {
        s.observe_window(decode(o));
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `FleetSummary::merge` is associative and commutative bit for bit —
    /// the algebra that makes shard count, merge grouping, and resize
    /// history invisible in the rollup.
    #[test]
    fn prop_fleet_merge_associative_and_commutative(
        xs in proptest::collection::vec(raw_observation(), 0..160),
        ys in proptest::collection::vec(raw_observation(), 0..160),
        zs in proptest::collection::vec(raw_observation(), 0..160),
        (da, db, dc) in (0u32..6, 0u32..6, 0u32..6),
    ) {
        let a = summarize(da, &xs);
        let b = summarize(db, &ys);
        let c = summarize(dc, &zs);

        // Commutativity: a ⊕ b == b ⊕ a.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");

        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut left = ab;
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right, "merge must be associative");

        // And the fold renders identically however grouped — the JSON
        // line is the bit-identity witness the e2e layers compare.
        let keys: Vec<String> = (0..16).map(|i| format!("s{i}")).collect();
        let keys: Vec<&str> = keys.iter().map(String::as_str).collect();
        prop_assert_eq!(
            left.report(&keys).to_json(),
            right.report(&keys).to_json()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Acceptance criterion: `Engine::fleet_report` is bit-identical for
    /// shards ∈ {1, 2, 4, 8} over the same keyed records — rendered JSON
    /// compared as strings, the strongest equality the wire offers.
    #[test]
    fn prop_fleet_report_bit_identical_across_shard_counts(
        records in proptest::collection::vec((0usize..KEYS.len(), 0usize..32), 200..600),
        base_seed in 0u64..u64::MAX,
        cut in 0.0f64..1.0,
    ) {
        let keyed: Vec<(String, usize)> = records
            .iter()
            .map(|&(k, v)| (KEYS[k].to_string(), v))
            .collect();
        let split = ((keyed.len() as f64) * cut) as usize;
        let mut reference: Option<String> = None;
        for shards in [1usize, 2, 4, 8] {
            let mut engine = Engine::builder(32)
                .seed(base_seed)
                .shards(shards)
                .tumbling(120)
                .analyses(batch())
                .build()
                .unwrap();
            engine.ingest_batch(&keyed[..split]).unwrap();
            engine.ingest_batch(&keyed[split..]).unwrap();
            engine.flush().unwrap();
            let line = engine.fleet_report().to_json();
            match &reference {
                None => reference = Some(line),
                Some(want) => prop_assert_eq!(&line, want, "{} shards", shards),
            }
        }
    }
}

/// A live resize mid-stream does not perturb the rollup: partials retired
/// by `Engine::resize` fold into the report exactly as if the pool had
/// never changed shape.
#[test]
fn fleet_report_survives_live_resizes() {
    let keyed: Vec<(String, usize)> = (0..2_400)
        .map(|i| (KEYS[(i * 13) % KEYS.len()].to_string(), (i * 11) % 32))
        .collect();
    let run = |resizes: &[(usize, usize)]| {
        let mut engine = Engine::builder(32)
            .seed(9)
            .shards(2)
            .tumbling(120)
            .analyses(batch())
            .build()
            .unwrap();
        let mut at = 0;
        for &(cut, shards) in resizes {
            engine.ingest_batch(&keyed[at..cut]).unwrap();
            engine.resize(shards).unwrap();
            at = cut;
        }
        engine.ingest_batch(&keyed[at..]).unwrap();
        engine.flush().unwrap();
        engine.fleet_report().to_json()
    };
    let steady = run(&[]);
    assert_eq!(run(&[(700, 5)]), steady, "grow mid-stream");
    assert_eq!(run(&[(400, 7), (1_500, 1)]), steady, "grow then collapse");
}

/// The rollup's counters reconcile with the reports the engine actually
/// emitted — streams, windows, record totals, and alarm counts are all
/// derivable from the `WindowReport` stream, and the fleet line must
/// agree with that derivation exactly.
#[test]
fn fleet_report_reconciles_with_window_reports() {
    let mut engine = Engine::builder(32)
        .seed(3)
        .shards(4)
        .tumbling(120)
        .analyses(batch())
        .build()
        .unwrap();
    let keyed: Vec<(String, usize)> = (0..2_000)
        .map(|i| (KEYS[(i * 7) % KEYS.len()].to_string(), (i * 5) % 32))
        .collect();
    let mut reports = engine.ingest_batch(&keyed).unwrap();
    reports.extend(engine.flush().unwrap());
    let fleet = engine.fleet_report();

    assert_eq!(fleet.streams, KEYS.len() as u64);
    assert_eq!(
        fleet.windows_complete,
        reports.iter().filter(|r| r.complete).count() as u64
    );
    assert_eq!(
        fleet.windows_partial,
        reports.iter().filter(|r| !r.complete).count() as u64
    );
    assert_eq!(
        fleet.records_seen,
        reports.iter().map(|r| r.seen).sum::<u64>()
    );
    assert_eq!(
        fleet.records_kept,
        reports.iter().map(|r| r.kept).sum::<u64>()
    );
    assert_eq!(
        fleet.alarm_windows,
        reports.iter().filter(|r| !r.all_quiet()).count() as u64
    );
    let alarming: std::collections::BTreeSet<&str> = reports
        .iter()
        .filter(|r| !r.all_quiet())
        .filter_map(|r| r.stream.as_deref())
        .collect();
    assert_eq!(fleet.alarming_streams, alarming.len() as u64);
    assert_eq!(
        fleet.drift_observations,
        reports
            .iter()
            .filter_map(|r| r.drift.as_ref())
            .filter(|d| d.statistic.is_some())
            .count() as u64
    );
    // The JSON line round-trips (the wire shape serve/watch share).
    let line = fleet.to_json();
    assert!(FleetReport::is_fleet_line(&line));
    assert_eq!(FleetReport::from_json(&line).unwrap(), fleet);
}
