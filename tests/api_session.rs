//! The analysis API's sample-reuse guarantee, verified from outside:
//!
//! 1. `Session::run` over {learn, test-ℓ₂, uniformity} against a
//!    `ReplayOracle` capture is **bit-identical** to running the three
//!    legacy entry points on the same replayed sets (property test);
//! 2. a whole batch on a `RecordFileOracle` costs exactly **one**
//!    streaming pass over the file;
//! 3. reports serde-round-trip through JSON text.

use khist::api::{run_analyses, Analysis, AnalysisKind, Learn, Report, TestL2, Uniformity};
use khist::prelude::*;
use khist::uniformity::{test_uniformity_from_set, UniformityBudget};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;

/// The shared-plan shapes for a {learn, test_l2, uniformity} batch, mirrored
/// from the engine: main = max(ℓ, m_u), r = max(r_learn, r_l2),
/// m = max(m_learn, m_l2).
fn shared_plan_sizes(
    lb: &LearnerBudget,
    l2: &L2TesterBudget,
    ub: &UniformityBudget,
) -> Vec<usize> {
    let main = lb.ell.max(ub.m);
    let r = lb.r.max(l2.r);
    let m = lb.m.max(l2.m);
    let mut sizes = vec![main];
    sizes.resize(r + 1, m);
    sizes
}

fn batch(k: usize, eps: f64, lb: LearnerBudget, l2: L2TesterBudget, ub: UniformityBudget) -> Vec<Analysis> {
    vec![
        Learn::k(k).eps(eps).budget(lb).into(),
        TestL2::k(k).eps(eps).budget(l2).into(),
        Uniformity::eps(eps).budget(ub).into(),
    ]
}

/// Runs the session batch and the legacy functions on the *same* captured
/// sets and asserts bit-identical results.
fn assert_session_matches_legacy(p: &DenseDistribution, k: usize, eps: f64, seed: u64) {
    let n = p.n();
    let lb = LearnerBudget::calibrated(n, k, eps, 0.02).unwrap();
    let l2 = L2TesterBudget::calibrated(n, eps, 0.02).unwrap();
    let ub = UniformityBudget::calibrated(n, eps, 0.05).unwrap();

    // Capture one shared draw.
    let mut dense = DenseOracle::new(p, seed);
    let recorded = dense.draw_batch(&shared_plan_sizes(&lb, &l2, &ub));
    let main = recorded[0].clone();
    let sets = recorded[1..].to_vec();

    // Engine path: replay the capture through a Session.
    let mut session = Session::new(
        Box::new(ReplayOracle::from_sets(n, recorded.clone())),
        seed,
    );
    let reports = session.run(&batch(k, eps, lb, l2, ub)).unwrap();

    // Legacy path: the three pre-API entry points on the same sets.
    let params = GreedyParams {
        k,
        eps,
        budget: lb,
        policy: CandidatePolicy::SampleEndpoints,
        max_endpoints: 128,
    };
    let legacy_learn = learn_from_samples(n, &main, &sets[..lb.r], &params).unwrap();
    let legacy_hist = compress_to_k(&legacy_learn.tiling, k)
        .unwrap()
        .normalized()
        .unwrap();
    let legacy_l2 = khist::tester::test_l2_from_sets(n, k, eps, &sets[..l2.r]).unwrap();
    let legacy_uni = test_uniformity_from_set(n, eps, &main).unwrap();

    // Bit-identical learner output.
    assert_eq!(reports[0].analysis, AnalysisKind::Learn);
    let session_hist = reports[0].histogram.as_ref().unwrap();
    assert_eq!(session_hist, &legacy_hist, "learned histograms diverge");
    assert_eq!(reports[0].samples_spent, legacy_learn.stats.samples_used);

    // Bit-identical tester verdict, cuts and probes.
    assert_eq!(reports[1].verdict, Some(legacy_l2.outcome));
    assert_eq!(reports[1].cuts, legacy_l2.cuts);
    assert_eq!(reports[1].probes, Some(legacy_l2.probes));
    assert_eq!(reports[1].samples_spent, legacy_l2.samples_used);

    // Bit-identical uniformity statistic.
    assert_eq!(reports[2].verdict, Some(legacy_uni.outcome));
    assert_eq!(reports[2].statistic, Some(legacy_uni.statistic));
    assert_eq!(reports[2].threshold, Some(legacy_uni.threshold));
    assert_eq!(reports[2].samples_spent, legacy_uni.samples_used);
}

#[test]
fn session_batch_is_bit_identical_to_legacy_on_replayed_capture() {
    let p = khist::dist::generators::zipf(96, 1.1).unwrap();
    assert_session_matches_legacy(&p, 3, 0.2, 7);
    let p = khist::dist::generators::staircase(64, 4).unwrap();
    assert_session_matches_legacy(&p, 4, 0.25, 8);
}

mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Satellite: the sample-reuse guarantee as a property over seeds
        /// and instances.
        #[test]
        fn prop_session_equals_legacy_on_same_sets(
            seed in 0u64..u64::MAX,
            k in 2usize..5,
            pick in 0usize..3,
        ) {
            let p = match pick {
                0 => khist::dist::generators::zipf(64, 1.0).unwrap(),
                1 => khist::dist::generators::staircase(64, 4).unwrap(),
                _ => khist::dist::generators::discrete_gaussian(64, 30.0, 9.0).unwrap(),
            };
            assert_session_matches_legacy(&p, k, 0.25, seed);
        }
    }
}

#[test]
fn record_file_batch_costs_exactly_one_pass() {
    // The hot-path win the shared plan exists for: learner + tester +
    // uniformity on a record file stream the file once, not three times.
    let mut rng = StdRng::seed_from_u64(19);
    let p = khist::dist::generators::staircase(64, 4).unwrap();
    let samples = p.sample_many(50_000, &mut rng);
    let path = std::env::temp_dir().join(format!("khist-api-onepass-{}.txt", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    for s in &samples {
        writeln!(f, "{s}").unwrap();
    }
    drop(f);

    let mut oracle = RecordFileOracle::open(&path, 64, 11).unwrap();
    assert_eq!(oracle.passes(), 0, "open's scan is not a draw pass");
    let lb = LearnerBudget::calibrated(64, 4, 0.25, 0.02).unwrap();
    let l2 = L2TesterBudget::calibrated(64, 0.25, 0.02).unwrap();
    let ub = UniformityBudget::calibrated(64, 0.25, 0.05).unwrap();
    let (reports, ledger) =
        run_analyses(&mut oracle, 11, &batch(4, 0.25, lb, l2, ub)).unwrap();
    assert_eq!(reports.len(), 3);
    assert_eq!(
        oracle.passes(),
        1,
        "a 3-analysis batch must stream the file exactly once"
    );
    assert_eq!(ledger.iter().filter(|e| e.label == "draw").count(), 1);

    // Contrast: the three legacy entry points cost one pass each.
    let mut oracle = RecordFileOracle::open(&path, 64, 11).unwrap();
    let params = GreedyParams::fast(4, 0.25, lb);
    learn(&mut oracle, &params).unwrap();
    test_l2(&mut oracle, 4, 0.25, l2).unwrap();
    test_uniformity(&mut oracle, 0.25, ub).unwrap();
    assert_eq!(oracle.passes(), 3, "legacy calls pay one pass each");

    std::fs::remove_file(&path).ok();
}

#[test]
fn session_reports_round_trip_through_json() {
    let p = khist::dist::generators::zipf(64, 1.0).unwrap();
    let mut session = Session::from_dense(&p, 23);
    let reports = session
        .run(&[
            Learn::k(3).eps(0.2).scale(0.02).into(),
            TestL2::k(3).eps(0.3).scale(0.02).into(),
            Uniformity::eps(0.3).scale(0.05).into(),
        ])
        .unwrap();
    for report in &reports {
        let json = report.to_json();
        let back = Report::from_json(&json).unwrap();
        assert_eq!(&back, report, "round trip changed the report: {json}");
        // and the JSON is parseable as plain structured text
        let value = serde::json::from_str(&json).unwrap();
        assert_eq!(
            value.get("seed").and_then(|v| v.as_u64()),
            Some(23),
            "seed missing from {json}"
        );
    }
}

#[test]
fn session_ledger_accounts_for_sharing() {
    // Drawn-once semantics: the oracle paid for max(requirements), while
    // the analyses' nominal spends sum to more — that difference is the
    // sharing win.
    let p = khist::dist::generators::zipf(128, 1.0).unwrap();
    let mut session = Session::from_dense(&p, 3);
    let reports = session
        .run(&[
            Learn::k(3).eps(0.2).scale(0.02).into(),
            TestL2::k(3).eps(0.3).scale(0.02).into(),
            Uniformity::eps(0.3).scale(0.05).into(),
        ])
        .unwrap();
    let drawn = session.samples_drawn();
    let spent: usize = reports.iter().map(|r| r.samples_spent).sum();
    assert!(
        spent > drawn,
        "no sharing happened: spent {spent} ≤ drawn {drawn}"
    );
}
