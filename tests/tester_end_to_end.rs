//! End-to-end tester correctness (Theorems 3 and 4) with *certified*
//! far-ness: every NO instance is first verified ε-far via the exact DPs
//! before the tester is required to reject it.

use khist::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Majority verdict over `runs` tester invocations.
fn vote_l2(p: &DenseDistribution, k: usize, eps: f64, scale: f64, seed: u64, runs: usize) -> bool {
    let budget = L2TesterBudget::calibrated(p.n(), eps, scale).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let accepts = (0..runs)
        .filter(|_| {
            let mut oracle = DenseOracle::new(p, rand::Rng::random(&mut rng));
            test_l2(&mut oracle, k, eps, budget)
                .unwrap()
                .outcome
                .is_accept()
        })
        .count();
    accepts * 2 > runs
}

fn vote_l1(p: &DenseDistribution, k: usize, eps: f64, scale: f64, seed: u64, runs: usize) -> bool {
    let budget = L1TesterBudget::calibrated(p.n(), k, eps, scale).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let accepts = (0..runs)
        .filter(|_| {
            let mut oracle = DenseOracle::new(p, rand::Rng::random(&mut rng));
            test_l1(&mut oracle, k, eps, budget)
                .unwrap()
                .outcome
                .is_accept()
        })
        .count();
    accepts * 2 > runs
}

#[test]
fn l2_completeness_on_random_histograms() {
    let mut rng = StdRng::seed_from_u64(100);
    for trial in 0..4u64 {
        let k = 2 + (trial as usize % 3);
        let (_, p) =
            khist::dist::generators::random_tiling_histogram_distinct(128, k, &mut rng).unwrap();
        assert!(
            vote_l2(&p, k, 0.3, 0.05, 200 + trial, 7),
            "trial {trial}: YES instance rejected"
        );
    }
}

#[test]
fn l2_soundness_on_certified_far_instance() {
    let k = 4;
    let eps = 0.15;
    let p = khist::dist::generators::spike_comb(128, 16).unwrap();
    // Certify: optimal k-histogram really is ε-far in ℓ₂.
    let opt = v_optimal(&p, k).unwrap();
    assert!(
        opt.l2_distance() > eps,
        "instance not certified far: ℓ₂ distance {} ≤ ε = {eps}",
        opt.l2_distance()
    );
    assert!(
        !vote_l2(&p, k, eps, 0.05, 1, 7),
        "certified-far instance accepted"
    );
}

#[test]
fn l2_monotone_in_k_on_spikes() {
    // spike_comb(96, 8) is a (2·8+1 = 17)-histogram: far for k = 4, in-class
    // for k = 17.
    let p = khist::dist::generators::spike_comb(96, 8).unwrap();
    assert!(!vote_l2(&p, 4, 0.2, 0.05, 2, 7), "k = 4 should reject");
    assert!(vote_l2(&p, 17, 0.2, 0.05, 3, 7), "k = 17 should accept");
}

#[test]
fn l1_completeness_on_yes_ensemble() {
    for (n, k, seed) in [(128usize, 4usize, 10u64), (256, 8, 11), (96, 2, 12)] {
        let inst = khist::dist::generators::yes_instance(n, k).unwrap();
        assert!(
            vote_l1(&inst.dist, k, 0.4, 0.02, seed, 7),
            "YES instance (n={n}, k={k}) rejected"
        );
    }
}

#[test]
fn l1_soundness_on_certified_no_ensemble() {
    // The Theorem 5 NO instance's ℓ₁ distance scales like 2/k (one
    // perturbed bucket of mass 2/k), so single-bucket certification only
    // works for small k; for larger k, perturb every bucket.
    let mut rng = StdRng::seed_from_u64(500);
    let eps = 0.2;

    let single = khist::dist::generators::no_instance(128, 4, &mut rng).unwrap();
    let cert = l1_flatten_optimal(&single.dist, 4).unwrap();
    assert!(
        cert.certifies_far(eps),
        "(n=128,k=4) not certified: flatten {} (lower bound {})",
        cert.flatten_cost,
        cert.l1_lower_bound()
    );
    assert!(
        !vote_l1(&single.dist, 4, eps * 2.0, 0.02, 20, 7),
        "certified-far NO instance (n=128, k=4) accepted"
    );

    let all = khist::dist::generators::half_empty_perturbation(256, 8, 8, &mut rng).unwrap();
    let cert = l1_flatten_optimal(&all, 8).unwrap();
    assert!(
        cert.certifies_far(2.0 * eps),
        "fully perturbed (n=256,k=8) not certified: lower bound {}",
        cert.l1_lower_bound()
    );
    assert!(
        !vote_l1(&all, 8, 2.0 * eps, 0.02, 21, 7),
        "certified-far fully-perturbed instance accepted"
    );
}

#[test]
fn l1_soundness_on_zigzag() {
    let eps = 0.35;
    let p = khist::dist::generators::zigzag(128, 0.95).unwrap();
    let cert = l1_flatten_optimal(&p, 4).unwrap();
    assert!(
        cert.certifies_far(eps),
        "zigzag lower bound {}",
        cert.l1_lower_bound()
    );
    assert!(
        !vote_l1(&p, 4, eps, 0.02, 30, 7),
        "certified-far zigzag accepted"
    );
}

#[test]
fn testers_respect_uniformity_special_case() {
    // k = 1 testing is uniformity testing (the paper's §1.3 connection).
    let uniform = DenseDistribution::uniform(256).unwrap();
    assert!(vote_l2(&uniform, 1, 0.3, 0.05, 40, 7));
    assert!(vote_l1(&uniform, 1, 0.4, 0.02, 41, 7));
    // "Uniform on a random half" — the classical hard instance — separates
    // the two norms: its ℓ₁ distance from uniform is 1 (the ℓ₁ tester must
    // reject), but its ℓ₂ distance is only 1/√n ≈ 0.06 (the ℓ₂ tester at
    // ε = 0.3 rightly accepts — this is exactly why ℓ₂ testing is possible
    // with polylog samples while ℓ₁ needs Ω(√n), Theorem 5).
    let mut rng = StdRng::seed_from_u64(42);
    let half = khist::dist::generators::half_empty_perturbation(256, 1, 1, &mut rng).unwrap();
    assert!(
        !vote_l1(&half, 1, 0.4, 0.02, 44, 7),
        "half-empty accepted by ℓ₁ @ k=1"
    );
    assert!(
        vote_l2(&half, 1, 0.3, 0.05, 43, 7),
        "half-empty is only 1/√n-far in ℓ₂ and should pass the ε = 0.3 ℓ₂ test"
    );
}

#[test]
fn sample_complexity_grows_sublinearly_in_n() {
    // The point of the paper: the ℓ₁ tester's budget grows like √n, not n.
    let b1 = L1TesterBudget::calibrated(1 << 10, 4, 0.3, 0.01).unwrap();
    let b2 = L1TesterBudget::calibrated(1 << 14, 4, 0.3, 0.01).unwrap();
    let sample_ratio = b2.total_samples().unwrap() as f64 / b1.total_samples().unwrap() as f64;
    let domain_ratio = 16.0;
    assert!(
        sample_ratio < domain_ratio / 2.0,
        "budget ratio {sample_ratio} not sublinear vs domain ratio {domain_ratio}"
    );
}
