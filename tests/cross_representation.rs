//! Cross-crate representation consistency: priority ↔ tiling ↔ dense ↔
//! samples round-trips, and estimator agreement between crates.

use khist::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn tiling_to_distribution_roundtrip() {
    // masses: 3·0.1 + 5·0.06 + 8·0.05 = 1
    let h = TilingHistogram::new(vec![0, 3, 8, 16], vec![0.1, 0.06, 0.05]).unwrap();
    assert!(h.is_distribution(1e-12));
    let d = h.to_distribution().unwrap();
    for i in 0..16 {
        assert!((d.mass(i) - h.evaluate(i)).abs() < 1e-12);
    }
    // And projecting d onto the same cuts recovers h exactly.
    let h2 = TilingHistogram::project(&d, h.interior_cuts()).unwrap();
    for i in 0..16 {
        assert!((h2.evaluate(i) - h.evaluate(i)).abs() < 1e-12);
    }
}

#[test]
fn empirical_distribution_agrees_with_sample_set_masses() {
    let p = khist::dist::generators::zipf(64, 1.0).unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    let set = SampleSet::draw(&p, 5000, &mut rng);
    let emp = khist::oracle::empirical_distribution(&set, 64).unwrap();
    for lo in (0..64).step_by(7) {
        for hi in [lo, (lo + 5).min(63), 63] {
            let iv = Interval::new(lo, hi).unwrap();
            assert!(
                (emp.interval_mass(iv) - set.empirical_mass(iv)).abs() < 1e-12,
                "mismatch on {iv}"
            );
        }
    }
}

#[test]
fn exact_collision_truth_matches_dense_power_sums() {
    // The oracle's absolute estimator converges to DenseDistribution's
    // interval_power_sum — tie the two crates together numerically.
    let p = khist::dist::generators::two_level(32, 0.25, 0.8).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let sets = SampleSet::draw_many(&p, 20_000, 5, &mut rng);
    let booster = khist::oracle::MedianBooster::new(&sets);
    for (lo, hi) in [(0usize, 31usize), (0, 7), (8, 31), (4, 12)] {
        let iv = Interval::new(lo, hi).unwrap();
        let estimate = booster.absolute_median(iv);
        let truth = p.interval_power_sum(iv);
        assert!(
            (estimate - truth).abs() < 0.01,
            "interval {iv}: estimate {estimate} vs truth {truth}"
        );
    }
}

#[test]
fn baseline_histograms_evaluate_consistently_via_dense() {
    let p = khist::dist::generators::discrete_gaussian(80, 40.0, 10.0).unwrap();
    for h in [
        v_optimal(&p, 5).unwrap().histogram,
        equi_width(&p, 5).unwrap(),
        equi_depth(&p, 5).unwrap(),
        max_diff(&p, 5).unwrap(),
        greedy_merge(&p, 5).unwrap(),
    ] {
        // l2_sq_to must agree with the naive dense-vector computation.
        let naive = khist::dist::distance::l2_sq_fn(&h.to_vec(), &p.to_vec());
        assert!((h.l2_sq_to(&p) - naive).abs() < 1e-12);
        assert!(h.is_distribution(1e-9));
    }
}

#[test]
fn greedy_outcome_representations_have_equal_mass() {
    let p = khist::dist::generators::zipf(96, 1.2).unwrap();
    let mut rng = StdRng::seed_from_u64(10);
    let budget = LearnerBudget::calibrated(96, 4, 0.15, 0.03).unwrap();
    let params = GreedyParams::new(4, 0.15, budget);
    let mut oracle = DenseOracle::new(&p, rand::Rng::random(&mut rng));
    let out = learn(&mut oracle, &params).unwrap();
    let t_mass = out.tiling.total_mass();
    let p_mass = out.priority.total_mass(96);
    assert!((t_mass - p_mass).abs() < 1e-9);
    // estimated masses concentrate near 1
    assert!(
        (t_mass - 1.0).abs() < 0.2,
        "estimated mass {t_mass} far from 1"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn prop_priority_tiling_dense_roundtrip(
        raw in proptest::collection::vec((0usize..24, 0usize..24, 0.01f64..1.0), 1..6),
    ) {
        let n = 24usize;
        let mut ph = PriorityHistogram::new();
        for &(a, b, v) in &raw {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            ph.push_top(Interval::new(lo, hi).unwrap(), v);
        }
        let tiling = ph.to_tiling(n).unwrap();
        // Evaluate equality pointwise.
        for i in 0..n {
            prop_assert!((tiling.evaluate(i) - ph.evaluate(i)).abs() < 1e-12);
        }
        // If total mass is positive, we can normalize into a distribution
        // and the masses stay proportional.
        if tiling.total_mass() > 1e-9 {
            let d = tiling.to_distribution().unwrap();
            let scale = 1.0 / tiling.total_mass();
            for i in 0..n {
                prop_assert!((d.mass(i) - tiling.evaluate(i) * scale).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn prop_sampleset_roundtrip_through_empirical(
        samples in proptest::collection::vec(0usize..32, 1..300),
    ) {
        let set = SampleSet::from_samples(samples.clone());
        let emp = khist::oracle::empirical_distribution(&set, 32).unwrap();
        // Re-deriving counts from the empirical pmf recovers the multiset.
        let m = samples.len() as f64;
        for v in 0..32 {
            let expected = set.occurrences(v) as f64 / m;
            prop_assert!((emp.mass(v) - expected).abs() < 1e-12);
        }
    }
}
