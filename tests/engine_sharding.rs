//! Sharding is semantics-free: the keyed multi-stream `Engine`'s
//! acceptance criteria.
//!
//! For every stream key, an `Engine` — at *any* shard count, any batch
//! boundaries, and any interleaving with other streams — must emit
//! `WindowReport`s bit-identical to a dedicated single-threaded `Monitor`
//! fed that stream's records with the derived seed
//! `Engine::stream_seed(base_seed, key)` (and the matching stream tag),
//! including the flush of partial tails. The monitor layer's push≡pull
//! property lifted one level up: sharding is a transport, not a semantic.

use khist::prelude::*;
use proptest::prelude::*;

/// The standing batch every stream runs: learner (weighted draw_batch
/// lanes) + ℓ₂ tester (set lanes) + uniformity (main lane) — all three
/// draw shapes exercised per window. Budgets are explicit and small so
/// the short windows this test drives always fill every lane (a window
/// much thinner than its plan can leave a weighted lane empty, which the
/// learner rejects — for a monitor and a dedicated engine stream alike).
fn batch() -> Vec<Analysis> {
    let mut learner = LearnerBudget::calibrated(32, 3, 0.25, 1.0).unwrap();
    learner.ell = 80;
    learner.r = 6;
    learner.m = 30;
    vec![
        Learn::k(3).eps(0.25).budget(learner).into(),
        TestL2::k(3)
            .eps(0.3)
            .budget(L2TesterBudget { r: 6, m: 40 })
            .into(),
        Uniformity::eps(0.3)
            .budget(UniformityBudget { m: 60 })
            .into(),
    ]
}

const KEYS: [&str; 4] = ["api", "web", "batch", "edge"];

/// A dedicated single-threaded monitor run over one stream's records:
/// the reference the engine must match bit for bit.
fn dedicated_monitor(
    n: usize,
    span: u64,
    base_seed: u64,
    key: &str,
    records: &[usize],
) -> Vec<WindowReport> {
    let mut monitor = Monitor::builder(n)
        .seed(Engine::stream_seed(base_seed, key))
        .stream(key)
        .tumbling(span)
        .analyses(batch())
        .build()
        .unwrap();
    let mut windows = monitor.ingest(records).unwrap();
    windows.extend(monitor.flush().unwrap());
    windows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Acceptance criterion: `Engine` with shards ∈ {1, 2, 4} produces
    /// per-stream `WindowReport` sequences bit-identical to a dedicated
    /// `Monitor` per stream (same seed derivation), including the flush
    /// of partial tails.
    #[test]
    fn prop_engine_streams_equal_dedicated_monitors(
        // Interleaved keyed records: (key index, value) pairs. The length
        // is deliberately not span-aligned so flushes cover partial tails.
        records in proptest::collection::vec((0usize..KEYS.len(), 0usize..32), 200..700),
        base_seed in 0u64..u64::MAX,
        cut in 0.0f64..1.0,
    ) {
        let n = 32;
        let span = 120u64;
        let keyed: Vec<(String, usize)> = records
            .iter()
            .map(|&(k, v)| (KEYS[k].to_string(), v))
            .collect();
        // Split the stream at an arbitrary point so windows straddle
        // ingest_batch calls.
        let split = ((keyed.len() as f64) * cut) as usize;

        for shards in [1usize, 2, 4] {
            let mut engine = Engine::builder(n)
                .seed(base_seed)
                .shards(shards)
                .tumbling(span)
                .analyses(batch())
                .build()
                .unwrap();
            let mut got = engine.ingest_batch(&keyed[..split]).unwrap();
            got.extend(engine.ingest_batch(&keyed[split..]).unwrap());
            got.extend(engine.flush().unwrap());

            let mut covered = 0;
            for key in KEYS {
                let mine: Vec<usize> = keyed
                    .iter()
                    .filter(|(k, _)| k == key)
                    .map(|&(_, v)| v)
                    .collect();
                let want = dedicated_monitor(n, span, base_seed, key, &mine);
                let stream_reports: Vec<WindowReport> = got
                    .iter()
                    .filter(|r| r.stream.as_deref() == Some(key))
                    .cloned()
                    .collect();
                prop_assert_eq!(
                    &stream_reports,
                    &want,
                    "stream {} @ {} shards",
                    key,
                    shards
                );
                covered += stream_reports.len();
            }
            prop_assert_eq!(covered, got.len(), "no report escapes its stream");
        }
    }

    /// Chunk-boundary acceptance criterion for the parallel route path:
    /// a single batch at or above `Engine::PARALLEL_ROUTE_MIN` fans out to
    /// the route workers in chunks, and with interleaved keys every
    /// stream's records straddle every chunk edge. The chunk-ordered
    /// concatenation must restore each stream's arrival order exactly —
    /// per-stream reports bit-identical to a dedicated monitor, for
    /// shards ∈ {1, 2, 4, 8} (1 = serial reference, the rest split the
    /// batch into 2·shards chunks at different edge positions).
    #[test]
    fn prop_parallel_route_chunk_edges_are_bit_identical(
        records in proptest::collection::vec(
            (0usize..KEYS.len(), 0usize..32),
            // At least PARALLEL_ROUTE_MIN (2048), not chunk-aligned.
            2048..4200,
        ),
        base_seed in 0u64..u64::MAX,
    ) {
        let n = 32;
        let span = 600u64;
        let keyed: Vec<(String, usize)> = records
            .iter()
            .map(|&(k, v)| (KEYS[k].to_string(), v))
            .collect();
        prop_assert!(keyed.len() >= Engine::PARALLEL_ROUTE_MIN);

        for shards in [1usize, 2, 4, 8] {
            let mut engine = Engine::builder(n)
                .seed(base_seed)
                .shards(shards)
                .tumbling(span)
                .analyses(batch())
                .build()
                .unwrap();
            // One big batch: debuts for every key funnel through the
            // parallel route's miss path, and the rest of the records
            // cross the per-chunk sub-partitions.
            let mut got = engine.ingest_batch(&keyed).unwrap();
            got.extend(engine.flush().unwrap());

            let mut covered = 0;
            for key in KEYS {
                let mine: Vec<usize> = keyed
                    .iter()
                    .filter(|(k, _)| k == key)
                    .map(|&(_, v)| v)
                    .collect();
                let want = dedicated_monitor(n, span, base_seed, key, &mine);
                let stream_reports: Vec<WindowReport> = got
                    .iter()
                    .filter(|r| r.stream.as_deref() == Some(key))
                    .cloned()
                    .collect();
                prop_assert_eq!(
                    &stream_reports,
                    &want,
                    "stream {} @ {} shards (parallel route)",
                    key,
                    shards
                );
                covered += stream_reports.len();
            }
            prop_assert_eq!(covered, got.len(), "no report escapes its stream");
        }
    }
}

/// A deterministic adversarial layout for the chunk edges: one hot stream
/// contributes *consecutive runs* of records positioned across every chunk
/// boundary for every shard count in {2, 4, 8} (chunk size is
/// `len.div_ceil(2 · shards)`), so any route-phase reordering of a run
/// split across two chunks would corrupt that stream's window contents.
#[test]
fn parallel_route_hot_stream_runs_across_every_chunk_edge() {
    let n = 32;
    let span = 400u64;
    let len = Engine::PARALLEL_ROUTE_MIN + 777; // not chunk-aligned
    // Alternate short runs of the hot key with filler from the other keys:
    // runs of 5 guarantee the hot stream crosses every boundary whose
    // chunk size exceeds the run length — true for all shard counts here.
    let keyed: Vec<(String, usize)> = (0..len)
        .map(|i| {
            let key = if (i / 5) % 2 == 0 { "hot" } else { KEYS[i % 3] };
            (key.to_string(), (i * 13 + i / 7) % n)
        })
        .collect();

    for shards in [1usize, 2, 4, 8] {
        let mut engine = Engine::builder(n)
            .seed(41)
            .shards(shards)
            .tumbling(span)
            .analyses(batch())
            .build()
            .unwrap();
        let mut got = engine.ingest_batch(&keyed).unwrap();
        got.extend(engine.flush().unwrap());

        for key in ["hot", KEYS[0], KEYS[1], KEYS[2]] {
            let mine: Vec<usize> = keyed
                .iter()
                .filter(|(k, _)| k == key)
                .map(|&(_, v)| v)
                .collect();
            let want = dedicated_monitor(n, span, 41, key, &mine);
            let stream_reports: Vec<WindowReport> = got
                .iter()
                .filter(|r| r.stream.as_deref() == Some(key))
                .cloned()
                .collect();
            assert_eq!(stream_reports, want, "stream {key} @ {shards} shards");
        }
    }
}

/// The flushed tail of every stream is reported (partial windows
/// included) — nothing is dropped, and flushing is idempotent in the
/// `Monitor` sense: the still-live partial window is re-reported
/// identically, never advanced.
#[test]
fn flush_covers_every_partial_tail() {
    let n = 32;
    let mut engine = Engine::builder(n)
        .seed(5)
        .shards(3)
        .tumbling(1_000)
        .analyses(batch())
        .build()
        .unwrap();
    // 150 records per stream: no window ever completes.
    let keyed: Vec<(String, usize)> = (0..600)
        .map(|i| (KEYS[i % KEYS.len()].to_string(), (i * 7) % n))
        .collect();
    assert!(engine.ingest_batch(&keyed).unwrap().is_empty());
    let tails = engine.flush().unwrap();
    assert_eq!(tails.len(), KEYS.len());
    for tail in &tails {
        assert!(!tail.complete);
        assert_eq!(tail.seen, 150);
        assert_eq!(tail.reports.len(), batch().len(), "tail thick enough to analyze");
    }
    // Tails match the dedicated monitors' flushes.
    for key in KEYS {
        let mine: Vec<usize> = keyed
            .iter()
            .filter(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .collect();
        let want = dedicated_monitor(n, 1_000, 5, key, &mine);
        let got: Vec<WindowReport> = tails
            .iter()
            .filter(|r| r.stream.as_deref() == Some(key))
            .cloned()
            .collect();
        assert_eq!(got, want, "stream {key}");
    }
    // A second flush re-reports the same still-live tails (the partial
    // window is not consumed), exactly like a dedicated monitor would.
    assert_eq!(engine.flush().unwrap(), tails);
}

/// The engine's output order is deterministic — every `ingest_batch` /
/// `flush` call returns its reports sorted by (stream, window id) — and
/// stable across repeated identical runs.
#[test]
fn engine_output_order_is_deterministic() {
    let run = || {
        let mut engine = Engine::builder(32)
            .seed(9)
            .shards(4)
            .tumbling(200)
            .analyses(batch())
            .build()
            .unwrap();
        let keyed: Vec<(String, usize)> = (0..2_000)
            .map(|i| (KEYS[(i * 13) % KEYS.len()].to_string(), (i * 11) % 32))
            .collect();
        (engine.ingest_batch(&keyed).unwrap(), engine.flush().unwrap())
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "identical runs produce identical interleavings");
    for call in [&a.0, &a.1] {
        let order: Vec<(Option<&str>, u64)> = call
            .iter()
            .map(|r| (r.stream.as_deref(), r.window))
            .collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted, "each call's reports sorted by (stream, window)");
    }
}

/// First-arrival order of keys must not leak into the output. Internally
/// each shard groups records per slot (an ordered map, not a randomized
/// hasher), so feeding the same records with streams debuting in opposite
/// orders yields reports that differ only by the per-call sort.
#[test]
fn key_arrival_order_does_not_change_reports() {
    let run = |reverse: bool| {
        let mut engine = Engine::builder(32)
            .seed(9)
            .shards(3)
            .tumbling(200)
            .analyses(batch())
            .build()
            .unwrap();
        let mut keys: Vec<&str> = KEYS.to_vec();
        if reverse {
            keys.reverse();
        }
        // Debut every stream in the chosen order, then interleave evenly.
        let mut keyed: Vec<(String, usize)> = keys
            .iter()
            .map(|k| (k.to_string(), 0))
            .collect();
        keyed.extend((0..3_000).map(|i| (KEYS[(i * 7) % KEYS.len()].to_string(), (i * 11) % 32)));
        let mut out = engine.ingest_batch(&keyed).unwrap();
        out.extend(engine.flush().unwrap());
        out.sort_by(|a, b| (&a.stream, a.window).cmp(&(&b.stream, b.window)));
        out
    };
    assert_eq!(run(false), run(true), "report content independent of key debut order");
}
