//! Cross-crate integration of the extension testers (uniformity, identity,
//! monotonicity) and the stream-to-sample bridge.

use khist::monotone::{monotonicity_budget, test_monotone_non_increasing};
use khist::prelude::*;
use khist::uniformity::test_uniformity_from_set;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn reservoir_feeds_every_tester() {
    // One long stream; reservoirs produce the samples for three different
    // testers, all of which must reach the right verdict.
    let mut rng = StdRng::seed_from_u64(42);
    let n = 256;
    let p = khist::dist::generators::zipf(n, 1.1).unwrap();

    let mut res = Reservoir::new(60_000);
    for _ in 0..500_000 {
        res.offer(p.sample(&mut rng), &mut rng);
    }
    let set = res.to_sample_set();

    // zipf is not uniform…
    let uni = test_uniformity_from_set(n, 0.3, &set).unwrap();
    assert_eq!(uni.outcome, TestOutcome::Reject);
    // …but is monotone non-increasing…
    let mono = khist::monotone::test_monotone_from_set(n, 0.3, &set).unwrap();
    assert_eq!(mono.outcome, TestOutcome::Accept);
    // …and the collision statistic matches the true l2 norm.
    assert!((uni.statistic - p.l2_norm_sq()).abs() < 0.01);
}

#[test]
fn identity_tester_distinguishes_learned_models() {
    // Learn a histogram from distribution A, then use the identity tester
    // to check fresh samples of A against the model (accept) and samples of
    // a drifted B against the same model (reject).
    let mut rng = StdRng::seed_from_u64(7);
    let n = 128;
    let a = khist::dist::generators::staircase(n, 4).unwrap();
    let b = khist::dist::generators::two_level(n, 0.1, 0.8).unwrap();

    let budget = LearnerBudget::calibrated(n, 4, 0.1, 0.05).unwrap();
    let mut oracle = DenseOracle::new(&a, rand::Rng::random(&mut rng));
    let model = learn(&mut oracle, &GreedyParams::new(4, 0.1, budget))
        .unwrap()
        .normalized_tiling()
        .unwrap()
        .to_distribution()
        .unwrap();

    let mut same_ok = 0;
    let mut drift_ok = 0;
    for _ in 0..9 {
        let mut oracle_a = DenseOracle::new(&a, rand::Rng::random(&mut rng));
        if test_identity_l2(&mut oracle_a, &model, 0.2, 8000)
            .unwrap()
            .outcome
            .is_accept()
        {
            same_ok += 1;
        }
        let mut oracle_b = DenseOracle::new(&b, rand::Rng::random(&mut rng));
        if !test_identity_l2(&mut oracle_b, &model, 0.2, 8000)
            .unwrap()
            .outcome
            .is_accept()
        {
            drift_ok += 1;
        }
    }
    assert!(same_ok > 4, "model rejected its own source {same_ok}/9");
    assert!(drift_ok > 4, "model accepted drifted data {drift_ok}/9");
}

#[test]
fn monotonicity_and_khistogram_testers_are_orthogonal() {
    let mut rng = StdRng::seed_from_u64(11);
    let n = 256;
    // A 3-histogram that is NOT monotone (middle piece heaviest).
    let h = TilingHistogram::from_pieces(
        &[
            (Interval::new(0, 63).unwrap(), 0.2 / 64.0),
            (Interval::new(64, 191).unwrap(), 0.7 / 128.0),
            (Interval::new(192, 255).unwrap(), 0.1 / 64.0),
        ],
        n,
    )
    .unwrap();
    let p = h.to_distribution().unwrap();

    // k-histogram tester accepts (majority).
    let tb = L2TesterBudget::calibrated(n, 0.25, 0.05).unwrap();
    let accepts = (0..7)
        .filter(|_| {
            let mut oracle = DenseOracle::new(&p, rand::Rng::random(&mut rng));
            test_l2(&mut oracle, 3, 0.25, tb)
                .unwrap()
                .outcome
                .is_accept()
        })
        .count();
    assert!(
        accepts >= 4,
        "3-histogram rejected by l2 tester {accepts}/7"
    );

    // monotonicity tester rejects (majority).
    let m = monotonicity_budget(n, 0.3, 1.0).unwrap();
    let rejects = (0..7)
        .filter(|_| {
            let mut oracle = DenseOracle::new(&p, rand::Rng::random(&mut rng));
            !test_monotone_non_increasing(&mut oracle, 0.3, m)
                .unwrap()
                .outcome
                .is_accept()
        })
        .count();
    assert!(rejects >= 4, "non-monotone histogram accepted {rejects}/7");
}

#[test]
fn cli_pipeline_matches_library_results() {
    // The CLI's split/learn path and the library's direct path agree on an
    // easy instance.
    let mut rng = StdRng::seed_from_u64(13);
    let p = khist::dist::generators::two_level(64, 0.25, 0.75).unwrap();
    let samples = p.sample_many(40_000, &mut rng);
    let report = khist::app::run_learn(&samples, 2, 0.15, 64).unwrap();
    assert!(report.contains("2-piece"));
    // Direct library path:
    let budget = LearnerBudget::calibrated(64, 2, 0.15, 0.05).unwrap();
    let mut oracle = DenseOracle::new(&p, rand::Rng::random(&mut rng));
    let out = learn(&mut oracle, &GreedyParams::fast(2, 0.15, budget)).unwrap();
    let compressed = compress_to_k(&out.tiling, 2).unwrap();
    assert!(compressed.l2_sq_to(&p) < 0.01);
}
