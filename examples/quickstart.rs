//! Quickstart: learn a k-histogram from samples and test histogram-ness
//! through the typed analysis API.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Walks through the library's two capabilities on a small synthetic
//! dataset:
//!
//! 1. learn a `k`-piece histogram of an unknown distribution from i.i.d.
//!    samples (Algorithm 1 / Theorem 2 of the paper), and compare it with
//!    the exact offline optimum;
//! 2. test whether a distribution *is* a tiling `k`-histogram (Theorem 3).
//!
//! Everything goes through one front door: build a typed request
//! (`Learn::k(6).eps(0.1)`), run it in a `Session`, get a structured
//! `Report` back (JSON-serializable — this is what `khist … --json`
//! prints).

use khist::prelude::*;

fn main() {
    let n = 512;
    let k = 6;
    let eps = 0.1;

    // --- The unknown distribution -----------------------------------------
    // A discretized Gaussian: plausible "employee age" attribute, NOT a
    // k-histogram, so the learner has real work to do.
    let p = khist::dist::generators::discrete_gaussian(n, 260.0, 60.0).unwrap();
    println!("domain n = {n}, target pieces k = {k}, accuracy ε = {eps}");

    // --- Learn from samples ------------------------------------------------
    let budget = LearnerBudget::calibrated(n, k, eps, 0.01).unwrap();
    println!(
        "sample budget: ℓ = {} (weights) + r·m = {}·{} (collisions) = {} samples",
        budget.ell,
        budget.r,
        budget.m,
        budget.total_samples().unwrap()
    );
    let mut session = Session::from_dense(&p, 2012);
    let report = session
        .run_one(Learn::k(k).eps(eps).budget(budget))
        .unwrap();
    let learned = report.histogram.as_ref().unwrap();
    let learned_err = learned.l2_sq_to(&p);

    // --- Compare with the exact offline optimum ----------------------------
    let opt = v_optimal(&p, k).unwrap();
    println!("\nlearned  ‖p−H‖₂²  = {learned_err:.6}");
    println!("optimal  ‖p−H*‖₂² = {:.6}", opt.sse);
    println!(
        "additive gap      = {:.6}  (Theorem 2 bound: 8ε = {:.2})",
        learned_err - opt.sse,
        8.0 * eps
    );
    println!(
        "samples spent     = {} in {:.1} ms (seed {})",
        report.samples_spent,
        report.wall_seconds * 1e3,
        report.seed
    );

    println!("\nlearned histogram pieces:");
    for (iv, v) in learned.pieces() {
        println!("  {iv}  density {v:.6}");
    }

    // --- Test histogram-ness ------------------------------------------------
    let staircase = khist::dist::generators::staircase(n, k).unwrap();
    let spiky = khist::dist::generators::spike_comb(n, 32).unwrap();
    let request = || TestL2::k(k).eps(0.25).scale(0.05);
    let verdict_in = Session::from_dense(&staircase, 7)
        .run_one(request())
        .unwrap();
    let verdict_out = Session::from_dense(&spiky, 8).run_one(request()).unwrap();
    println!("\nℓ₂ tester ({} samples each):", verdict_in.samples_spent);
    println!(
        "  staircase (true {k}-histogram) → {:?}",
        verdict_in.verdict.unwrap()
    );
    println!(
        "  spike comb (ε-far)             → {:?}",
        verdict_out.verdict.unwrap()
    );

    // --- Structured output ---------------------------------------------------
    println!("\nthe same report as JSON (what `khist learn --json` emits):");
    println!("{}", report.to_json());
}
