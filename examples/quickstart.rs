//! Quickstart: learn a k-histogram from samples and test histogram-ness.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Walks through the library's two capabilities on a small synthetic
//! dataset:
//!
//! 1. learn a `k`-piece histogram of an unknown distribution from i.i.d.
//!    samples (Algorithm 1 / Theorem 2 of the paper), and compare it with
//!    the exact offline optimum;
//! 2. test whether a distribution *is* a tiling `k`-histogram (Theorem 3).

use khist::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2012);
    let n = 512;
    let k = 6;
    let eps = 0.1;

    // --- The unknown distribution -----------------------------------------
    // A discretized Gaussian: plausible "employee age" attribute, NOT a
    // k-histogram, so the learner has real work to do.
    let p = khist::dist::generators::discrete_gaussian(n, 260.0, 60.0).unwrap();
    println!("domain n = {n}, target pieces k = {k}, accuracy ε = {eps}");

    // --- Learn from samples ------------------------------------------------
    let budget = LearnerBudget::calibrated(n, k, eps, 0.01);
    println!(
        "sample budget: ℓ = {} (weights) + r·m = {}·{} (collisions) = {} samples",
        budget.ell,
        budget.r,
        budget.m,
        budget.total_samples()
    );
    let params = GreedyParams::fast(k, eps, budget);
    let learned = learn_dense(&p, &params, &mut rng).unwrap();
    let learned_err = learned.tiling.l2_sq_to(&p);

    // --- Compare with the exact offline optimum ----------------------------
    let opt = v_optimal(&p, k).unwrap();
    println!("\nlearned  ‖p−H‖₂²  = {learned_err:.6}");
    println!("optimal  ‖p−H*‖₂² = {:.6}", opt.sse);
    println!(
        "additive gap      = {:.6}  (Theorem 2 bound: 8ε = {:.2})",
        learned_err - opt.sse,
        8.0 * eps
    );
    println!(
        "candidates scored = {}, endpoints used = {}",
        learned.stats.candidates_evaluated, learned.stats.endpoints_used
    );

    println!("\nlearned histogram pieces:");
    for (iv, v) in learned.tiling.pieces() {
        println!("  {iv}  density {v:.6}");
    }

    // --- Test histogram-ness ------------------------------------------------
    let tb = L2TesterBudget::calibrated(n, 0.25, 0.05);
    let staircase = khist::dist::generators::staircase(n, k).unwrap();
    let verdict_in = test_l2_dense(&staircase, k, 0.25, tb, &mut rng).unwrap();
    let spiky = khist::dist::generators::spike_comb(n, 32).unwrap();
    let verdict_out = test_l2_dense(&spiky, k, 0.25, tb, &mut rng).unwrap();
    println!("\nℓ₂ tester ({} samples each):", tb.total_samples());
    println!(
        "  staircase (true {k}-histogram) → {:?}",
        verdict_in.outcome
    );
    println!(
        "  spike comb (ε-far)             → {:?}",
        verdict_out.outcome
    );
}
