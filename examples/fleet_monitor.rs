//! A fleet monitor: 100 tenant streams through one keyed [`Engine`], one
//! hot tenant drifts, and the engine alarms on exactly that tenant.
//!
//! Run with: `cargo run --release --example fleet_monitor`
//!
//! The scenario: a multi-tenant service emits per-tenant events over a
//! bucketed attribute (latency bucket, price band, shard id …). Every
//! tenant's traffic follows the same healthy 4-segment histogram — until
//! a deploy regresses ONE tenant, collapsing a third of its volume onto
//! two hot buckets. Fleet-level dashboards barely move: the hot tenant is
//! 1% of total volume, so the aggregate distribution shifts by ~0.3% of
//! mass. Per-stream monitoring is the only way to see it.
//!
//! The [`Engine`] demultiplexes the interleaved keyed event stream onto
//! per-tenant window state machines (here across 4 worker shards), and
//! each tenant gets its own standing `ℓ₂` test and window-to-window drift
//! check — the two-sample closeness statistic needs no model of either
//! window, just the frozen reservoir lanes. Sharding is semantics-free:
//! any `--shards`-style fan-out yields bit-identical per-tenant reports
//! (property-tested in `tests/engine_sharding.rs`), so the fleet scales
//! across cores without changing a single verdict.

use khist::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 256; // bucketed attribute domain
    let tenants = 100;
    let span = 4_000u64; // records per tumbling window, per tenant
    let hot_tenant = "tenant-042";

    // Healthy traffic: 4 flat segments. Regressed traffic: a third of the
    // volume collapses onto two hot buckets.
    let healthy = khist::dist::generators::staircase(n, 4).unwrap();
    let spikes = khist::dist::generators::spike_comb(n, 2).unwrap();
    let regressed =
        khist::dist::generators::mixture(&[(0.67, healthy.clone()), (0.33, spikes)]).unwrap();

    let mut engine = Engine::builder(n)
        .seed(7)
        .shards(4)
        .tumbling(span)
        .analyses([TestL2::k(4).eps(0.3).scale(0.05).into()])
        .drift_eps(0.25)
        .build()
        .unwrap();
    println!(
        "fleet: {tenants} tenant streams on {} shards, tumbling windows of {span} records, \
         {} samples kept per window per tenant\n",
        engine.shards(),
        engine.plan().total_samples().unwrap(),
    );

    // Two phases, one fleet-wide window each: every tenant healthy, then
    // one tenant regressed. Events arrive interleaved across tenants, as
    // they would from a real ingest pipe.
    let mut source = StdRng::seed_from_u64(1);
    let keys: Vec<String> = (0..tenants).map(|t| format!("tenant-{t:03}")).collect();
    let mut alarms: Vec<(String, u64)> = Vec::new();
    for (phase, label) in [(0u64, "all healthy"), (1, "one tenant regressed")] {
        let mut batch: Vec<(String, usize)> = Vec::with_capacity(tenants * span as usize);
        for i in 0..tenants * span as usize {
            let key = &keys[i % tenants];
            let p = if phase == 1 && key == hot_tenant {
                &regressed
            } else {
                &healthy
            };
            batch.push((key.clone(), p.sample(&mut source)));
        }
        let reports = engine.ingest_batch(&batch).unwrap();
        let mut quiet = 0;
        for report in &reports {
            if report.all_quiet() {
                quiet += 1;
            } else {
                alarms.push((report.stream.clone().unwrap(), report.window));
                let drift = report.drift.as_ref().expect("window 1 has a baseline");
                println!(
                    "  ALARM {} window {}: l2-test {:?}, drift {:?} (statistic {:.3e} vs {:.3e})",
                    report.stream.as_deref().unwrap(),
                    report.window,
                    report.reports[0].verdict.unwrap(),
                    drift.verdict.unwrap(),
                    drift.statistic.unwrap(),
                    drift.threshold.unwrap(),
                );
            }
        }
        println!(
            "phase \"{label}\": {} windows reported, {quiet} quiet, {} alarming\n",
            reports.len(),
            reports.len() - quiet
        );
    }

    // The control-plane accessors answer fleet questions without touching
    // a single report: how many tenants, who they are (debut order), and
    // what each one has sent. `khist serve`'s STATS replies are built from
    // exactly these calls.
    let roster = engine.stream_seen();
    assert_eq!(roster.len(), engine.stream_count());
    assert!(
        roster.iter().map(|&(key, _)| key).eq(keys.iter().map(String::as_str)),
        "stream_seen reports tenants in debut order"
    );
    let per_tenant = roster.first().map_or(0, |&(_, seen)| seen);
    assert!(
        roster.iter().all(|&(_, seen)| seen == per_tenant),
        "round-robin interleave feeds every tenant evenly"
    );
    println!(
        "ingested {} records over {} streams ({per_tenant} per tenant); alarms: {alarms:?}",
        engine.seen(),
        engine.stream_count(),
    );
    assert_eq!(
        alarms,
        vec![(hot_tenant.to_string(), 1)],
        "exactly the hot tenant's second window must alarm"
    );
    println!("✓ only {hot_tenant} was paged — 99 healthy tenants stayed quiet");

    // The fleet rollup tells the same story from one aggregate line —
    // composed purely from the window reports above (zero extra oracle
    // draws), bit-identical for any shard count, and exactly what
    // `khist watch --fleet` / `khist serve`'s FLEET verb emit as JSONL.
    let fleet = engine.fleet_report();
    println!(
        "\nfleet rollup: {}/{} streams alarming, {} windows, drift p50 {:.3} p99 {:.3}",
        fleet.alarming_streams,
        fleet.streams,
        fleet.windows_complete + fleet.windows_partial,
        fleet.drift_p50.unwrap_or(f64::NAN),
        fleet.drift_p99.unwrap_or(f64::NAN),
    );
    for (rank, top) in fleet.top_drift.iter().enumerate() {
        println!(
            "  #{} {} — drift severity {:.2} (window {})",
            rank + 1,
            top.stream,
            top.score,
            top.window
        );
    }
    assert_eq!(
        (fleet.streams, fleet.alarming_streams),
        (tenants as u64, 1),
        "the rollup counts exactly 1 alarming stream out of 100"
    );
    let leader = fleet.top_drift.first().expect("phase 2 produced drift scores");
    assert_eq!(leader.stream, hot_tenant, "the hot tenant ranks #1 by drift");
    assert!(
        leader.score > 1.0,
        "the leader's severity (statistic/threshold) shows a rejection"
    );
    assert!(
        fleet.top_drift[1..].iter().all(|t| t.score < 1.0),
        "every runner-up stayed below its drift threshold"
    );
    println!("✓ the fleet line ranks {hot_tenant} #1 and counts 1/100 alarming streams");
}
