//! Histogram construction shoot-out: the paper's sampled greedy vs the
//! classical full-data histogram families.
//!
//! Run with: `cargo run --release --example compare_baselines`
//!
//! For each workload distribution, builds a `k`-histogram with every method
//! and reports the squared ℓ₂ error (the v-optimal objective). Full-data
//! methods read the exact pmf; sampled methods see only i.i.d. draws.

use khist::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(77);
    let n = 512;
    let k = 8;
    let eps = 0.1;

    let workloads: Vec<(&str, DenseDistribution)> = vec![
        ("zipf(1.2)", khist::dist::generators::zipf(n, 1.2).unwrap()),
        (
            "gaussian",
            khist::dist::generators::discrete_gaussian(n, 250.0, 40.0).unwrap(),
        ),
        (
            "bimodal",
            khist::dist::generators::mixture(&[
                (
                    0.5,
                    khist::dist::generators::discrete_gaussian(n, 120.0, 25.0).unwrap(),
                ),
                (
                    0.5,
                    khist::dist::generators::discrete_gaussian(n, 380.0, 25.0).unwrap(),
                ),
            ])
            .unwrap(),
        ),
        (
            "staircase-8",
            khist::dist::generators::staircase(n, 8).unwrap(),
        ),
    ];

    let budget = LearnerBudget::calibrated(n, k, eps, 0.005).unwrap();
    println!(
        "n = {n}, k = {k}; sampled methods use {} samples; errors are ‖p−H‖₂²\n",
        budget.total_samples().unwrap()
    );
    println!(
        "{:<14}{:>14}{:>14}{:>14}{:>14}{:>14}{:>14}",
        "workload",
        "v-optimal",
        "greedy(paper)",
        "sample+DP",
        "greedy-merge",
        "equi-depth",
        "equi-width"
    );

    for (name, p) in &workloads {
        let vo = v_optimal(p, k).unwrap().sse;
        let params = GreedyParams::fast(k, eps, budget);
        let t0 = Instant::now();
        let mut oracle = DenseOracle::new(p, rand::Rng::random(&mut rng));
        let paper = learn(&mut oracle, &params).unwrap().tiling.l2_sq_to(p);
        let paper_time = t0.elapsed();
        let sdp = sample_then_dp(p, k, budget.total_samples().unwrap(), &mut rng)
            .unwrap()
            .sse_vs_truth;
        let gm = greedy_merge(p, k).unwrap().l2_sq_to(p);
        let ed = equi_depth(p, k).unwrap().l2_sq_to(p);
        let ew = equi_width(p, k).unwrap().l2_sq_to(p);
        println!(
            "{:<14}{:>14.6}{:>14.6}{:>14.6}{:>14.6}{:>14.6}{:>14.6}",
            name, vo, paper, sdp, gm, ed, ew
        );
        let _ = paper_time;
    }

    println!(
        "\nReading the table: v-optimal is the full-data optimum (lower bound for\n\
         everyone); the paper's greedy and sample+DP see only samples and still\n\
         land near it; equi-width collapses on skewed/bimodal shapes."
    );
}
