//! Structure-drift monitoring, push-based: the `ℓ₁` shape tester and the
//! window-to-window closeness check side by side.
//!
//! Run with: `cargo run --release --example drift_detection`
//!
//! A monitoring pipeline receives events keyed by a bucketed attribute.
//! While the system is healthy the attribute distribution is a coarse
//! step function (a k-histogram: a few customer segments, each internally
//! uniform). A regression then fragments the distribution inside one
//! segment — overall segment volumes stay identical, so mean/volume
//! dashboards see nothing.
//!
//! Two sample-based detectors watch the same pushed windows of a
//! [`Monitor`]:
//!
//! * the **`ℓ₁` tester** (Theorem 4) checks each window against the model
//!   "is this *any* k-histogram?" — it needs only `Õ(√(kn))` samples and
//!   no baseline;
//! * the **drift check** compares each window's sample against the
//!   previous window's (`ℓ₂` closeness from two sample sets, the
//!   Diakonikolas–Kane–Nikishkin setting) — no model at all, only the
//!   frozen baseline window.
//!
//! The run demonstrates a *separation*, not redundancy: the ℓ₁ tester
//! alarms on every faulty window, while the ℓ₂ drift check stays quiet
//! throughout — fragmenting segments moves `Θ(1)` of `ℓ₁` mass but only
//! `O(‖p‖₂²) ≈ O(1/n)` of squared-`ℓ₂` mass, far below any constant
//! closeness threshold. This is the paper's `ℓ₁` vs `ℓ₂` gap made
//! operational: faults like this are exactly why the `Õ(ε⁻⁵√(kn))`-sample
//! ℓ₁ tester earns its keep next to the cheap `ℓ₂` machinery. (For an
//! `ℓ₂`-visible fault where the drift check *does* fire, see the
//! `live_monitor` example.)

use khist::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 256; // bucketed attribute domain
    let k = 4; // expected number of segments
    let eps = 0.4;
    let span = 20_000u64;

    // Healthy traffic: 4 segments with different volumes, flat inside.
    let healthy = khist::dist::generators::staircase(n, k).unwrap();
    // Faulty traffic: same segment volumes, but inside every segment half
    // the buckets go silent and the other half doubles (a sharding bug).
    let mut gen_rng = StdRng::seed_from_u64(314);
    let faulty =
        khist::dist::generators::half_empty_perturbation(n, k, k, &mut gen_rng).unwrap();

    let mut monitor = Monitor::builder(n)
        .seed(99)
        .tumbling(span)
        .analyses([TestL1::k(k).eps(eps).scale(0.02).into()])
        .drift_eps(0.3)
        .build()
        .unwrap();

    println!(
        "monitoring with ℓ₁ tester + ℓ₂ drift: n = {n}, k = {k}, ε = {eps}; \
         windows of {span} records (ℓ₁ budget wants {}, lanes keep what arrives)",
        monitor.plan().total_samples().unwrap()
    );
    println!(
        "{:<8}{:<12}{:>10}{:>10}",
        "window", "source", "shape", "drift"
    );

    let mut stream_rng = StdRng::seed_from_u64(2718);
    let batches = 10u64;
    let mut shape_alarms = [0u32; 2];
    let mut drift_alarms = [0u32; 2];
    for batch in 0..batches {
        // First half of the run is healthy, second half is faulty.
        let (label, source) = if batch < batches / 2 {
            ("healthy", &healthy)
        } else {
            ("FAULTY", &faulty)
        };
        let events = source.sample_many(span as usize, &mut stream_rng);
        for report in monitor.ingest(&events).unwrap() {
            let shape_alarm = !report.reports[0].accepted();
            let drift_alarm = report.drift.as_ref().is_some_and(|d| !d.accepted());
            let faulty_side = usize::from(label == "FAULTY");
            shape_alarms[faulty_side] += u32::from(shape_alarm);
            drift_alarms[faulty_side] += u32::from(drift_alarm);
            println!(
                "{:<8}{:<12}{:>10}{:>10}",
                report.window,
                label,
                if shape_alarm { "ALARM" } else { "ok" },
                match report.drift.as_ref() {
                    None => "-",
                    Some(d) if d.accepted() => "quiet",
                    Some(_) => "ALARM",
                },
            );
        }
    }

    println!(
        "\nshape alarms   — healthy: {}/{h}, faulty: {}/{f}",
        shape_alarms[0],
        shape_alarms[1],
        h = batches / 2,
        f = batches - batches / 2
    );
    println!(
        "drift alarms   — healthy: {}/{h}, faulty: {}/{f}",
        drift_alarms[0],
        drift_alarms[1],
        h = batches / 2,
        f = batches - batches / 2
    );
    println!(
        "(each verdict is guaranteed correct with probability ≥ 2/3 at the\n\
         theoretical budget; production use would vote over a few windows.\n\
         The ℓ₂ drift check staying quiet is the point: this fault moves\n\
         Θ(1) ℓ₁ mass but only O(1/n) squared-ℓ₂ mass — the paper's ℓ₁/ℓ₂\n\
         separation, and the reason the √(kn)-sample ℓ₁ tester exists.)"
    );
}
