//! Structure-drift monitoring with the tiling-k-histogram tester.
//!
//! Run with: `cargo run --release --example drift_detection`
//!
//! A monitoring pipeline receives batches of events keyed by a bucketed
//! attribute. While the system is healthy the attribute distribution is a
//! coarse step function (a k-histogram: a few customer segments, each
//! internally uniform). A regression then fragments the distribution inside
//! one segment — overall segment volumes stay identical, so mean/volume
//! dashboards see nothing, but the distribution stops being a k-histogram.
//!
//! The ℓ₁ tester (Theorem 4) flags exactly this: it consumes only samples
//! (`Õ(√(kn))` of them), never the full distribution.

use khist::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(314);
    let n = 256; // bucketed attribute domain
    let k = 4; // expected number of segments
    let eps = 0.4;

    // Healthy traffic: 4 segments with different volumes, flat inside.
    let healthy = khist::dist::generators::staircase(n, k).unwrap();
    // Faulty traffic: same segment volumes, but inside every segment half
    // the buckets go silent and the other half doubles (a sharding bug).
    let faulty = khist::dist::generators::half_empty_perturbation(n, k, k, &mut rng).unwrap();

    let budget = L1TesterBudget::calibrated(n, k, eps, 0.02).unwrap();
    println!(
        "monitoring with ℓ₁ tester: n = {n}, k = {k}, ε = {eps}, {} samples/batch ({}×{})",
        budget.total_samples().unwrap(),
        budget.r,
        budget.m
    );
    println!(
        "{:<8}{:<12}{:>10}{:>12}",
        "batch", "source", "verdict", "probes"
    );

    let mut alarms_healthy = 0;
    let mut alarms_faulty = 0;
    let batches = 10;
    for batch in 0..batches {
        // First half of the run is healthy, second half is faulty.
        let (label, source) = if batch < batches / 2 {
            ("healthy", &healthy)
        } else {
            ("FAULTY", &faulty)
        };
        let mut oracle = DenseOracle::new(source, rand::Rng::random(&mut rng));
        let report = test_l1(&mut oracle, k, eps, budget).unwrap();
        let alarm = !matches!(report.outcome, TestOutcome::Accept);
        if alarm && label == "healthy" {
            alarms_healthy += 1;
        }
        if alarm && label == "FAULTY" {
            alarms_faulty += 1;
        }
        println!(
            "{:<8}{:<12}{:>10}{:>12}",
            batch,
            label,
            if alarm { "ALARM" } else { "ok" },
            report.probes
        );
    }

    println!(
        "\nfalse alarms on healthy batches: {alarms_healthy}/{h}, \
         detections on faulty batches: {alarms_faulty}/{f}",
        h = batches / 2,
        f = batches - batches / 2
    );
    println!(
        "(each verdict is guaranteed correct with probability ≥ 2/3 at the\n\
         theoretical budget; production use would vote over a few batches)"
    );
}
