//! One `Session`, one draw, four answers: the shared-sample-plan win.
//!
//! Run with: `cargo run --release --example batch_analyze`
//!
//! A single `Session::run` batch answers *learn a histogram* plus three
//! testers (ℓ₂ structure, uniformity, monotonicity) from ONE shared
//! sample draw. The session ledger shows the accounting: the oracle paid
//! for `max` of the requirements once, while the analyses "spent" their
//! nominal budgets against the same sets — the gap is the hot-path win,
//! which on a `RecordFileOracle` is literally the difference between one
//! file pass and four.

use khist::prelude::*;

fn main() {
    let n = 1024;
    let k = 6;

    // An e-commerce-ish order-value attribute: lognormal-like, monotone
    // after the mode, definitely not uniform.
    let p = khist::dist::generators::mixture(&[
        (0.7, khist::dist::generators::geometric(n, 0.995).unwrap()),
        (
            0.3,
            khist::dist::generators::discrete_gaussian(n, 300.0, 40.0).unwrap(),
        ),
    ])
    .unwrap();

    let mut session = Session::from_dense(&p, 42);
    let batch: Vec<Analysis> = vec![
        Learn::k(k).eps(0.1).scale(0.01).into(),
        TestL2::k(k).eps(0.25).scale(0.05).into(),
        Uniformity::eps(0.3).scale(0.1).into(),
        Monotone::eps(0.3).into(),
    ];
    let reports = session.run(&batch).unwrap();

    println!("batch of {} analyses over [0, {n}), seed {}:", reports.len(), session.seed());
    for report in &reports {
        println!("  {report}");
    }

    let learned = reports[0].histogram.as_ref().unwrap();
    println!("\nlearned {k}-piece summary:", );
    for (iv, v) in learned.pieces() {
        println!("  {iv}  density {v:.6}");
    }

    // --- The ledger: where the sharing shows up ---------------------------
    println!("\nper-analysis sample-spend ledger:");
    for entry in session.ledger() {
        println!(
            "  {:<12} {:>9} samples  {:>8.3} ms",
            entry.label,
            entry.samples,
            entry.seconds * 1e3
        );
    }
    let drawn = session.samples_drawn();
    let spent: usize = reports.iter().map(|r| r.samples_spent).sum();
    println!(
        "\ndrawn once: {drawn} samples — consumed by analyses: {spent} \
         ({:.1}× reuse; on a record file this is 1 pass instead of {})",
        spent as f64 / drawn as f64,
        reports.len()
    );

    // Structured output for machines: the same reports as a JSON array.
    println!("\nfirst report as JSON:\n{}", reports[1].to_json());
}
