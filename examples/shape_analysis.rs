//! Distribution shape analysis: the full tester toolbox on one dataset.
//!
//! Run with: `cargo run --release --example shape_analysis`
//!
//! Given only samples of an unknown distribution, run the whole battery —
//! uniformity (k = 1 lineage), k-histogram structure (the paper's
//! Theorems 3–4), monotonicity (the BKR04-style histogram reduction) and
//! identity against a reference — and print a structural profile. This is
//! the workflow the property-testing literature envisions: cheap sample-only
//! probes before any expensive full-data processing.

use khist::monotone::{monotonicity_budget, test_monotone_non_increasing_dense};
use khist::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn profile(name: &str, p: &DenseDistribution, rng: &mut StdRng) {
    let n = p.n();
    println!("── {name} (n = {n}) ──");

    let ub = UniformityBudget::calibrated(n, 0.3, 0.1);
    let uni = test_uniformity_dense(p, 0.3, ub, rng).unwrap();
    println!(
        "  uniform?        {:?}  (collision stat {:.2e} vs threshold {:.2e}, {} samples)",
        uni.outcome, uni.statistic, uni.threshold, uni.samples_used
    );

    let mono = test_monotone_non_increasing_dense(p, 0.3, monotonicity_budget(n, 0.3, 1.0), rng).unwrap();
    println!(
        "  non-increasing? {:?}  (isotonic residual {:.3} vs {:.3}, {} Birgé buckets)",
        mono.outcome, mono.isotonic_distance, mono.threshold, mono.buckets
    );

    for k in [2usize, 4, 8] {
        let tb = L2TesterBudget::calibrated(n, 0.2, 0.05);
        let rep = test_l2_dense(p, k, 0.2, tb, rng).unwrap();
        println!(
            "  {k:>2}-histogram?   {:?}  ({} probes)",
            rep.outcome, rep.probes
        );
    }

    let reference = khist::dist::generators::zipf(n, 1.0).unwrap();
    let id = test_identity_l2_dense(p, &reference, 0.15, 20_000, rng).unwrap();
    println!(
        "  = zipf(1.0)?    {:?}  (‖p−q‖₂² estimate {:.2e})",
        id.outcome, id.statistic
    );
    println!();
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let n = 512;

    let subjects: Vec<(&str, DenseDistribution)> = vec![
        ("uniform", DenseDistribution::uniform(n).unwrap()),
        ("zipf(1.0)", khist::dist::generators::zipf(n, 1.0).unwrap()),
        (
            "staircase-4",
            khist::dist::generators::staircase(n, 4).unwrap(),
        ),
        (
            "bimodal",
            khist::dist::generators::mixture(&[
                (
                    0.5,
                    khist::dist::generators::discrete_gaussian(n, 128.0, 30.0).unwrap(),
                ),
                (
                    0.5,
                    khist::dist::generators::discrete_gaussian(n, 384.0, 30.0).unwrap(),
                ),
            ])
            .unwrap(),
        ),
    ];
    for (name, p) in &subjects {
        profile(name, p, &mut rng);
    }
    println!(
        "Reading the profiles: uniform passes every structural test but is\n\
         not zipf; zipf's heavy head makes it non-uniform and not even a\n\
         2-histogram in ℓ₂, yet perfectly monotone and identical to itself;\n\
         the staircase and bimodal shapes pass the ℓ₂ histogram tests even\n\
         at k = 2 because their ℓ₂ distance to coarse histograms is tiny —\n\
         the norm-sensitivity the paper's ℓ₁ tester (and its √(kn) price)\n\
         exists to overcome; the bimodal shape alone fails monotonicity."
    );
}
