//! Distribution shape analysis: the full tester toolbox on one dataset —
//! through one `Session` and ONE shared sample draw.
//!
//! Run with: `cargo run --release --example shape_analysis`
//!
//! Given only samples of an unknown distribution, run the whole battery —
//! uniformity (k = 1 lineage), k-histogram structure (the paper's
//! Theorem 3 at three different k), monotonicity (the BKR04-style
//! histogram reduction) and identity against a reference — and print a
//! structural profile. Before the analysis API this cost one sample draw
//! *per probe*; a `Session` batch computes the shared `SamplePlan` and
//! draws once, which is exactly the workflow the property-testing
//! literature envisions: cheap sample-only probes before any expensive
//! full-data processing.

use khist::prelude::*;

fn profile(name: &str, p: &DenseDistribution, seed: u64) {
    let n = p.n();
    println!("── {name} (n = {n}) ──");

    let reference = khist::dist::generators::zipf(n, 1.0).unwrap();
    let mut session = Session::from_dense(p, seed);
    let reports = session
        .run(&[
            Uniformity::eps(0.3).scale(0.1).into(),
            Monotone::eps(0.3).into(),
            TestL2::k(2).eps(0.2).scale(0.05).into(),
            TestL2::k(4).eps(0.2).scale(0.05).into(),
            TestL2::k(8).eps(0.2).scale(0.05).into(),
            IdentityL2::against(reference).eps(0.15).samples(20_000).into(),
        ])
        .unwrap();

    let uni = &reports[0];
    println!(
        "  uniform?        {:?}  (collision stat {:.2e} vs threshold {:.2e}, {} samples)",
        uni.verdict.unwrap(),
        uni.statistic.unwrap(),
        uni.threshold.unwrap(),
        uni.samples_spent
    );
    let mono = &reports[1];
    println!(
        "  non-increasing? {:?}  (isotonic residual {:.3} vs {:.3})",
        mono.verdict.unwrap(),
        mono.statistic.unwrap(),
        mono.threshold.unwrap()
    );
    for (k, rep) in [2usize, 4, 8].iter().zip(&reports[2..5]) {
        println!(
            "  {k:>2}-histogram?   {:?}  ({} probes)",
            rep.verdict.unwrap(),
            rep.probes.unwrap()
        );
    }
    let id = &reports[5];
    println!(
        "  = zipf(1.0)?    {:?}  (‖p−q‖₂² estimate {:.2e})",
        id.verdict.unwrap(),
        id.statistic.unwrap()
    );
    println!(
        "  cost: {} samples drawn once, {} consumed across {} probes\n",
        session.samples_drawn(),
        reports.iter().map(|r| r.samples_spent).sum::<usize>(),
        reports.len()
    );
}

fn main() {
    let n = 512;

    let subjects: Vec<(&str, DenseDistribution)> = vec![
        ("uniform", DenseDistribution::uniform(n).unwrap()),
        ("zipf(1.0)", khist::dist::generators::zipf(n, 1.0).unwrap()),
        (
            "staircase-4",
            khist::dist::generators::staircase(n, 4).unwrap(),
        ),
        (
            "bimodal",
            khist::dist::generators::mixture(&[
                (
                    0.5,
                    khist::dist::generators::discrete_gaussian(n, 128.0, 30.0).unwrap(),
                ),
                (
                    0.5,
                    khist::dist::generators::discrete_gaussian(n, 384.0, 30.0).unwrap(),
                ),
            ])
            .unwrap(),
        ),
    ];
    for (i, (name, p)) in subjects.iter().enumerate() {
        profile(name, p, 2024 + i as u64);
    }
    println!(
        "Reading the profiles: uniform passes every structural test but is\n\
         not zipf; zipf's heavy head makes it non-uniform and not even a\n\
         2-histogram in ℓ₂, yet perfectly monotone and identical to itself;\n\
         the staircase and bimodal shapes pass the ℓ₂ histogram tests even\n\
         at k = 2 because their ℓ₂ distance to coarse histograms is tiny —\n\
         the norm-sensitivity the paper's ℓ₁ tester (and its √(kn) price)\n\
         exists to overcome; the staircase (ascending) and the bimodal\n\
         shape both fail monotonicity."
    );
}
