//! The Theorem 5 lower bound, live: distinguishing the YES/NO ensemble
//! gets √(kn)-expensive.
//!
//! Run with: `cargo run --release --example lower_bound_demo`
//!
//! Draws the paper's hard instances (alternating heavy/empty buckets; the
//! NO instance hides a half-empty perturbation in one random heavy bucket)
//! and shows the success rate of the natural collision distinguisher as the
//! sample budget grows, for two domain sizes. The 50 %→100 % transition
//! shifts right as `n` grows — by the predicted `√n` factor.

use khist::lower_bound::{distinguishing_rate, CollisionDistinguisher};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(55);
    let k = 4;
    let trials = 200;
    let d = CollisionDistinguisher::default();

    let budgets = [16usize, 64, 256, 1024, 4096, 16384];
    let domains = [256usize, 4096];

    println!(
        "Theorem 5 ensemble, k = {k}; entries are distinguishing accuracy over {trials} trials"
    );
    print!("{:<10}", "samples");
    for &n in &domains {
        print!("{:>14}", format!("n = {n}"));
    }
    println!();
    for &m in &budgets {
        print!("{:<10}", m);
        for &n in &domains {
            let rate = distinguishing_rate(n, k, m, trials, &d, &mut rng).unwrap();
            print!("{:>14.2}", rate);
        }
        println!();
    }
    println!(
        "\nAccuracy 0.5 = coin flipping. The transition to reliable detection\n\
         needs ≈ 4× more samples for the 16× larger domain — the √n scaling\n\
         of Theorem 5 (total Ω(√(kn)))."
    );
}
