//! Approximate query answering: range-selectivity estimation from a learned
//! histogram.
//!
//! Run with: `cargo run --release --example selectivity`
//!
//! This is the database scenario the paper's introduction motivates:
//! histograms summarize an attribute's distribution so the query optimizer
//! can estimate the selectivity of range predicates (`WHERE age BETWEEN a
//! AND b`) without scanning the data. Here the "data" is a skewed synthetic
//! attribute; we learn a v-optimal-style histogram *from a sample of the
//! table* using the paper's greedy learner and measure selectivity-estimate
//! quality against the exact answer, for the learned histogram and for the
//! classical equi-width/equi-depth summaries of the same size.

use khist::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic "order value" attribute: log-normal-ish mixture with a heavy
/// discount spike — the kind of multi-modal skew that breaks equi-width.
fn order_value_attribute(n: usize) -> DenseDistribution {
    let bulk =
        khist::dist::generators::discrete_gaussian(n, n as f64 * 0.2, n as f64 * 0.06).unwrap();
    let tail = khist::dist::generators::geometric(n, 0.995).unwrap();
    let mut spike = vec![0.0; n];
    spike[n / 10] = 1.0; // a popular fixed price point
    let spike = DenseDistribution::from_weights(&spike).unwrap();
    khist::dist::generators::mixture(&[(0.55, bulk), (0.30, tail), (0.15, spike)]).unwrap()
}

fn range_mass(h: &TilingHistogram, lo: usize, hi: usize) -> f64 {
    (lo..=hi).map(|i| h.evaluate(i)).sum()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(98);
    let n = 1024;
    let k = 12;
    let eps = 0.1;

    let p = order_value_attribute(n);

    // Learn the histogram from samples of the table only.
    let budget = LearnerBudget::calibrated(n, k, eps, 0.005).unwrap();
    let params = GreedyParams::fast(k, eps, budget);
    let mut oracle = DenseOracle::new(&p, rand::Rng::random(&mut rng));
    let learned = learn(&mut oracle, &params)
        .unwrap()
        .normalized_tiling()
        .unwrap();
    println!(
        "learned {k}-piece histogram from {} samples (domain n = {n})",
        budget.total_samples().unwrap()
    );

    // Classical summaries built with FULL knowledge of the data (an
    // advantage we grant the baselines).
    let ew = equi_width(&p, k).unwrap();
    let ed = equi_depth(&p, k).unwrap();
    let vopt = v_optimal(&p, k).unwrap().histogram;

    // Query workload: random ranges of widths 1%–20% of the domain.
    let queries: Vec<(usize, usize)> = (0..2000)
        .map(|_| {
            let width = rng.random_range(n / 100..n / 5);
            let lo = rng.random_range(0..n - width);
            (lo, lo + width)
        })
        .collect();

    println!(
        "\n{:<28}{:>12}{:>12}{:>14}",
        "estimator", "avg |err|", "max |err|", "rms err"
    );
    for (name, h) in [
        ("learned (sampled, paper)", &learned),
        ("v-optimal (full data)", &vopt),
        ("equi-width (full data)", &ew),
        ("equi-depth (full data)", &ed),
    ] {
        let mut abs_sum = 0.0f64;
        let mut abs_max = 0.0f64;
        let mut sq_sum = 0.0f64;
        for &(lo, hi) in &queries {
            let truth = p.interval_mass(Interval::new(lo, hi).unwrap());
            let est = range_mass(h, lo, hi);
            let err = (est - truth).abs();
            abs_sum += err;
            abs_max = abs_max.max(err);
            sq_sum += err * err;
        }
        let q = queries.len() as f64;
        println!(
            "{:<28}{:>12.5}{:>12.5}{:>14.5}",
            name,
            abs_sum / q,
            abs_max,
            (sq_sum / q).sqrt()
        );
    }
    println!(
        "\nThe sampled learner tracks the full-data v-optimal summary and beats\n\
         blind equi-width pieces on this skewed attribute, using {} samples\n\
         instead of the full table.",
        budget.total_samples().unwrap()
    );
}
