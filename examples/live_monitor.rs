//! A production-style live monitor: push events in, get windowed
//! verdicts and drift alarms out.
//!
//! Run with: `cargo run --release --example live_monitor`
//!
//! The scenario: a service emits events keyed by a bucketed attribute
//! (latency bucket, shard id, price band …). Healthy traffic follows a
//! coarse 4-segment histogram. Mid-stream, a routing bug concentrates a
//! quarter of the traffic onto two hot buckets — total volume unchanged,
//! so throughput dashboards stay flat. The [`Monitor`] sees it twice
//! over:
//!
//! 1. the standing `ℓ₂` histogram test per window stops accepting
//!    ("traffic no longer looks like ≤ 4 flat segments"), and
//! 2. the window-to-window drift check rejects ("this window's sample is
//!    far from the last one's") — the closeness-testing view of the same
//!    event, needing no model of either side.
//!
//! (Subtler faults that move little `ℓ₂` mass — e.g. fragmentation inside
//! segments — are the `ℓ₁` tester's territory; see the `drift_detection`
//! example.) The monitor never stores the stream: each window keeps only
//! its plan-shaped reservoir lanes, and every verdict is computed from
//! those frozen lanes with zero additional draws.

use khist::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 256; // bucketed attribute domain
    let k = 4; // expected number of segments
    let span = 25_000u64; // records per tumbling window

    // Healthy traffic: 4 segments, flat inside each.
    let healthy = khist::dist::generators::staircase(n, k).unwrap();
    // Regressed traffic: a quarter of the volume collapses onto two hot
    // buckets (a routing bug); the rest still follows the segments.
    let hot = khist::dist::generators::spike_comb(n, 2).unwrap();
    let faulty =
        khist::dist::generators::mixture(&[(0.75, healthy.clone()), (0.25, hot)]).unwrap();

    let mut monitor = Monitor::builder(n)
        .seed(7)
        .tumbling(span)
        .analyses([
            TestL2::k(k).eps(0.3).scale(0.05).into(),
            Uniformity::eps(0.3).scale(0.1).into(),
        ])
        .drift_eps(0.25)
        .build()
        .unwrap();
    println!(
        "monitoring [0, {n}) with tumbling windows of {span} records; \
         {} samples kept per window (plan {:?}-ish)\n",
        monitor.plan().total_samples().unwrap(),
        (monitor.plan().main(), monitor.plan().r(), monitor.plan().m()),
    );
    println!(
        "{:<8}{:<10}{:>10}{:>12}{:>12}",
        "window", "source", "l2-test", "drift", "kept"
    );

    // The event loop: batches arrive, get pushed, reports fall out at
    // window boundaries. Windows 0–4 healthy, 5–9 faulty.
    let mut stream_rng = StdRng::seed_from_u64(42);
    for window in 0..10u64 {
        let source = if window < 5 { &healthy } else { &faulty };
        let label = if window < 5 { "healthy" } else { "FAULTY" };
        // Events arrive in small batches, as they would from a socket.
        let mut reports = Vec::new();
        let mut remaining = span;
        while remaining > 0 {
            let chunk = remaining.min(1_000) as usize;
            let events = source.sample_many(chunk, &mut stream_rng);
            reports.extend(monitor.ingest(&events).unwrap());
            remaining -= chunk as u64;
        }
        for report in reports {
            let shape = report.reports[0]
                .verdict
                .map(|v| format!("{v:?}"))
                .unwrap_or_default();
            let drift = report
                .drift
                .as_ref()
                .map(|d| if d.accepted() { "quiet" } else { "ALARM" })
                .unwrap_or("-");
            println!(
                "{:<8}{:<10}{:>10}{:>12}{:>12}",
                report.window, label, shape, drift, report.kept
            );
        }
    }

    println!(
        "\nledger: {} windows frozen, {} total samples served, stream never stored",
        monitor.windows(),
        monitor
            .ledger()
            .iter()
            .filter(|e| e.label == "draw")
            .map(|e| e.samples)
            .sum::<usize>(),
    );
    println!(
        "(the same monitor drives `khist watch -` on stdin: every verdict \
         above is recomputable\n from the frozen window + seed alone)"
    );
}
