//! Learning a histogram from a raw event stream with reservoirs.
//!
//! Run with: `cargo run --release --example stream_learn`
//!
//! The paper's model assumes i.i.d. sample access. Real pipelines see an
//! unbounded stream instead; this example shows the standard bridge: fan the
//! stream round-robin into `r + 1` reservoirs (one for the learner's main
//! sample, `r` for its collision sets — round-robin keeps them independent),
//! then hand reservoir snapshots to `learn_from_samples`. The stream is
//! never stored: memory is `O(r·capacity)` regardless of stream length.

use khist::oracle::Reservoir;
use khist::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(4711);
    let n = 512;
    let k = 6;
    let eps = 0.15;

    // Hidden source: a bimodal "response latency bucket" distribution.
    let p = khist::dist::generators::mixture(&[
        (
            0.6,
            khist::dist::generators::discrete_gaussian(n, 90.0, 20.0).unwrap(),
        ),
        (
            0.4,
            khist::dist::generators::discrete_gaussian(n, 350.0, 35.0).unwrap(),
        ),
    ])
    .unwrap();

    // Budget decides the reservoir capacities.
    let budget = LearnerBudget::calibrated(n, k, eps, 0.01).unwrap();
    let mut main_res = Reservoir::new(budget.ell);
    let mut coll_res: Vec<Reservoir> = (0..budget.r).map(|_| Reservoir::new(budget.m)).collect();

    // Consume a 10-million-event stream, never storing it.
    let stream_len = 10_000_000usize;
    let fan_out = budget.r + 1;
    for t in 0..stream_len {
        let event = p.sample(&mut rng);
        let lane = t % fan_out;
        if lane == 0 {
            main_res.offer(event, &mut rng);
        } else {
            coll_res[lane - 1].offer(event, &mut rng);
        }
    }
    println!(
        "stream: {stream_len} events fanned into 1+{} reservoirs (capacities {} / {})",
        budget.r, budget.ell, budget.m
    );

    // Snapshot and learn.
    let main_set = main_res.to_sample_set();
    let coll_sets: Vec<SampleSet> = coll_res.iter().map(|r| r.to_sample_set()).collect();
    let params = GreedyParams::fast(k, eps, budget);
    let out = khist::greedy::learn_from_samples(n, &main_set, &coll_sets, &params).unwrap();
    let summary = compress_to_k(&out.tiling, k).unwrap();

    println!(
        "\nlearned {}-piece summary from reservoir snapshots:",
        summary.piece_count()
    );
    for (iv, v) in summary.pieces() {
        println!("  {iv}  density {v:.6}");
    }
    let opt = v_optimal(&p, k).unwrap();
    println!(
        "\n‖p−H‖₂² = {:.2e} (offline optimum {:.2e}, Theorem 2 bound allows +{:.1})",
        summary.l2_sq_to(&p),
        opt.sse,
        8.0 * eps
    );
    println!(
        "memory held: {} sample slots vs {} stream events",
        budget.ell + budget.r * budget.m,
        stream_len
    );
}
