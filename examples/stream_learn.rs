//! Learning a histogram from a raw event stream, push-style.
//!
//! Run with: `cargo run --release --example stream_learn`
//!
//! The paper's model assumes i.i.d. sample access. Real pipelines see an
//! unbounded stream instead; the [`Monitor`] is the bridge: push events
//! in as they arrive and the window sink routes them into plan-shaped
//! reservoir lanes (one for the learner's main sample, `r` for its
//! collision sets — the same disjoint-lane split the pull path uses).
//! The stream is never stored: memory is `O(sample budget)` regardless
//! of stream length, and the learned histogram is computed entirely from
//! the frozen window — zero draws beyond it.

use khist::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 512;
    let k = 6;
    let eps = 0.15;

    // Hidden source: a bimodal "response latency bucket" distribution.
    let p = khist::dist::generators::mixture(&[
        (
            0.6,
            khist::dist::generators::discrete_gaussian(n, 90.0, 20.0).unwrap(),
        ),
        (
            0.4,
            khist::dist::generators::discrete_gaussian(n, 350.0, 35.0).unwrap(),
        ),
    ])
    .unwrap();

    // One tumbling window spanning the whole stream: "learn from the last
    // 5 million events". The Learn request's budget decides the lane
    // capacities; the window span decides how much traffic flows through.
    let stream_len = 5_000_000u64;
    let budget = LearnerBudget::calibrated(n, k, eps, 0.01).unwrap();
    let mut monitor = Monitor::builder(n)
        .seed(4711)
        .tumbling(stream_len)
        .analyses([Learn::k(k).eps(eps).budget(budget).into()])
        .build()
        .unwrap();
    let plan = monitor.plan();
    println!(
        "stream: {stream_len} events through 1+{} reservoir lanes (capacities {} / {})",
        plan.r(),
        plan.main(),
        plan.m()
    );

    // Consume the stream in arrival-sized chunks, never storing it.
    let mut rng = StdRng::seed_from_u64(4711);
    let mut remaining = stream_len;
    let mut windows = Vec::new();
    while remaining > 0 {
        let chunk = remaining.min(10_000) as usize;
        windows.extend(monitor.ingest(&p.sample_many(chunk, &mut rng)).unwrap());
        remaining -= chunk as u64;
    }
    let window = windows.pop().expect("the span-sized window completed");
    let summary = window.reports[0]
        .histogram
        .as_ref()
        .expect("learn reports a histogram");

    println!(
        "\nlearned {}-piece summary from window {} ({} of {} records kept):",
        summary.piece_count(),
        window.window,
        window.kept,
        window.seen
    );
    for (iv, v) in summary.pieces() {
        println!("  {iv}  density {v:.6}");
    }
    let opt = v_optimal(&p, k).unwrap();
    println!(
        "\n‖p−H‖₂² = {:.2e} (offline optimum {:.2e}, Theorem 2 bound allows +{:.1})",
        summary.l2_sq_to(&p),
        opt.sse,
        8.0 * eps
    );
    println!(
        "memory held: {} sample slots vs {} stream events; every verdict \
         recomputable from (window, seed {})",
        plan.total_samples().unwrap(),
        stream_len,
        monitor.seed()
    );
}
