//! Support logic for the `khist` command-line tool.
//!
//! The binary in `src/bin/khist.rs` is a thin shell around these functions
//! so the argument handling, file parsing and report formatting are unit
//! tested like any other library code.
//!
//! Input format: one non-negative integer per line (blank lines and `#`
//! comments ignored) — the raw samples/records of a data set, exactly the
//! access model of the paper. The domain size is `max + 1` unless
//! overridden with `--n`.
//!
//! Every command is a thin shell over the typed analysis API
//! ([`khist_core::api`]): `learn`/`test` run a single [`Analysis`] and
//! `analyze` runs a whole batch through one shared
//! [`SamplePlan`](khist_core::api::SamplePlan) — a single streaming pass
//! over the record file no matter how many analyses ride on it. The
//! binary streams record files through a [`RecordFileOracle`] (fixed-size
//! reservoirs, so a multi-million-line file never gets materialized),
//! while the in-memory helpers ([`run_learn`] / [`run_test`]) feed
//! pre-split data through a [`ReplayOracle`]. Randomness comes from
//! `--seed` (default 0), so every run is reproducible. `--json` swaps the
//! human rendering for the serde [`Report`] JSON.

use khist_core::api::{
    run_analyses, Analysis, AnalysisKind, Engine, FleetReport, Learn, LedgerEntry, Monitor,
    Monotone, Report, TestL1, TestL2, Uniformity, WindowReport,
};
use khist_core::monotone::monotonicity_budget;
use khist_core::uniformity::UniformityBudget;
use khist_oracle::{
    empirical_distribution, L1TesterBudget, L2TesterBudget, LearnerBudget, RecordFileOracle,
    ReplayOracle, SampleOracle, SampleSet,
};
use serde::{Serialize, Value};

/// The analysis names `--run` accepts, listed verbatim in error messages.
const VALID_RUNS: &str = "learn, l1, l2, uniformity, monotone";

/// Parsed command-line request.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Learn a `k`-histogram from the samples in a file.
    Learn {
        /// Input path.
        path: String,
        /// Number of pieces.
        k: usize,
        /// Accuracy parameter.
        eps: f64,
        /// Domain override (`0` = infer from data).
        n: usize,
        /// RNG seed for the sampling oracle.
        seed: u64,
        /// Emit the serde `Report` as JSON instead of human text.
        json: bool,
    },
    /// Test whether the file's distribution is a tiling `k`-histogram.
    Test {
        /// Input path.
        path: String,
        /// Number of pieces.
        k: usize,
        /// Accuracy parameter.
        eps: f64,
        /// Domain override (`0` = infer from data).
        n: usize,
        /// `"l1"` or `"l2"`.
        norm: String,
        /// RNG seed for the sampling oracle.
        seed: u64,
        /// Emit the serde `Report` as JSON instead of human text.
        json: bool,
    },
    /// Run a batch of analyses through one shared sample plan.
    Analyze {
        /// Input path.
        path: String,
        /// Number of pieces (for `learn`/`l1`/`l2`).
        k: usize,
        /// Accuracy parameter.
        eps: f64,
        /// Domain override (`0` = infer from data).
        n: usize,
        /// RNG seed for the sampling oracle.
        seed: u64,
        /// Emit the reports as a JSON array instead of human text.
        json: bool,
        /// Which analyses to run (`--run learn,l2,uniformity`).
        runs: Vec<String>,
    },
    /// Monitor a record stream push-style: windowed reports + drift.
    Watch {
        /// Input path, or `-` for stdin.
        path: String,
        /// Number of pieces (for `learn`/`l1`/`l2`).
        k: usize,
        /// Accuracy parameter.
        eps: f64,
        /// Domain size (required for stdin; `0` = infer by pre-scanning a
        /// file).
        n: usize,
        /// RNG seed for the window reservoirs.
        seed: u64,
        /// Report cadence in records (window span; sliding windows step by
        /// this and cover four steps).
        every: u64,
        /// `"tumbling"` or `"sliding"`.
        window: String,
        /// Which analyses to run per window (`--run learn,l2,uniformity`).
        runs: Vec<String>,
        /// Emit one JSON object per window (JSONL) instead of human text.
        json: bool,
        /// Which of the two whitespace-separated fields per line is the
        /// stream key (`None` = un-keyed single-stream input).
        key_field: Option<usize>,
        /// Worker shards stream keys are hashed onto (`1` = unsharded).
        shards: usize,
        /// Interleave fleet-level rollup lines next to the per-stream
        /// output (requires `key_field`).
        fleet: bool,
    },
    /// Serve keyed ingest over Unix sockets / stdin: the reactor in
    /// [`khist_serve`], with `watch --key-field`'s analysis options.
    Serve {
        /// Data-plane Unix socket path (`None` = stdin only).
        socket: Option<String>,
        /// Control-plane Unix socket path (`STATS`/`SUB`/`SHUTDOWN`).
        control: Option<String>,
        /// Read stdin as a data source (implied when no `--socket`).
        stdin: bool,
        /// Number of pieces (for `learn`/`l1`/`l2`).
        k: usize,
        /// Accuracy parameter.
        eps: f64,
        /// Domain size (required — a live stream cannot be pre-scanned).
        n: usize,
        /// RNG seed for the window reservoirs.
        seed: u64,
        /// Report cadence in records.
        every: u64,
        /// `"tumbling"` or `"sliding"`.
        window: String,
        /// Which analyses to run per window.
        runs: Vec<String>,
        /// Which of the two whitespace-separated fields is the key.
        key_field: usize,
        /// Worker shards stream keys are routed onto.
        shards: usize,
        /// Drain into the engine at this many accumulated records.
        batch: usize,
        /// … or after this many milliseconds, whichever first.
        flush_ms: u64,
        /// Per-connection unframed-input budget (bytes).
        conn_buffer: usize,
        /// Global parsed-but-uningested budget (bytes).
        budget: usize,
    },
    /// Print summary statistics of the file's empirical distribution.
    Summarize {
        /// Input path.
        path: String,
        /// Domain override (`0` = infer from data).
        n: usize,
    },
    /// Print usage.
    Help,
}

/// Parses CLI arguments (past the binary name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    let mut path: Option<String> = None;
    let mut k = 8usize;
    let mut eps = 0.1f64;
    let mut n = 0usize;
    let mut norm = "l2".to_string();
    let mut seed = 0u64;
    let mut json = false;
    let mut every = 100_000u64;
    let mut window = "tumbling".to_string();
    let mut runs: Vec<String> = vec!["learn".into(), "l2".into(), "uniformity".into()];
    let mut key_field: Option<usize> = None;
    let mut shards = 1usize;
    let mut fleet = false;
    let mut socket: Option<String> = None;
    let mut control: Option<String> = None;
    let mut stdin = false;
    let mut batch = 4096usize;
    let mut flush_ms = 50u64;
    let mut conn_buffer = 64 * 1024usize;
    let mut budget = 4 * 1024 * 1024usize;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = Some(it.next().ok_or("--socket requires a path")?.clone()),
            "--control" => control = Some(it.next().ok_or("--control requires a path")?.clone()),
            "--stdin" => stdin = true,
            "--batch" => {
                batch = next_parsed(&mut it, "--batch")?;
                if batch == 0 {
                    return Err("--batch must be positive".into());
                }
            }
            "--flush-ms" => flush_ms = next_parsed(&mut it, "--flush-ms")?,
            "--conn-buffer" => {
                conn_buffer = next_parsed(&mut it, "--conn-buffer")?;
                if conn_buffer == 0 {
                    return Err("--conn-buffer must be positive".into());
                }
            }
            "--budget" => {
                budget = next_parsed(&mut it, "--budget")?;
                if budget == 0 {
                    return Err("--budget must be positive".into());
                }
            }
            "--k" => k = next_parsed(&mut it, "--k")?,
            "--eps" => eps = next_parsed(&mut it, "--eps")?,
            "--n" => n = next_parsed(&mut it, "--n")?,
            "--seed" => seed = next_parsed(&mut it, "--seed")?,
            "--every" => {
                every = next_parsed(&mut it, "--every")?;
                if every == 0 {
                    return Err("--every must be positive".into());
                }
            }
            "--key-field" => {
                let field: usize = next_parsed(&mut it, "--key-field")?;
                if field > 1 {
                    return Err(format!(
                        "--key-field must be 0 or 1 (keyed records carry exactly two \
                         whitespace-separated fields per line), got {field}"
                    ));
                }
                key_field = Some(field);
            }
            "--shards" => {
                shards = next_parsed(&mut it, "--shards")?;
                if shards == 0 {
                    return Err("--shards must be positive (1 = unsharded)".into());
                }
            }
            "--json" => json = true,
            "--fleet" => fleet = true,
            "--norm" => {
                norm = it.next().ok_or("--norm requires a value")?.clone();
                if norm != "l1" && norm != "l2" {
                    return Err(format!("--norm must be l1 or l2, got {norm}"));
                }
            }
            "--window" => {
                window = it.next().ok_or("--window requires a value")?.to_lowercase();
                if window != "tumbling" && window != "sliding" {
                    return Err(format!("--window must be tumbling or sliding, got {window}"));
                }
            }
            "--run" => {
                let list = it.next().ok_or("--run requires a value")?;
                runs = list
                    .split(',')
                    .map(|s| s.trim().to_lowercase())
                    .collect();
                for run in &runs {
                    if !matches!(run.as_str(), "learn" | "l1" | "l2" | "uniformity" | "monotone") {
                        return Err(format!(
                            "--run got unknown analysis '{run}'; valid analyses: {VALID_RUNS}"
                        ));
                    }
                }
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => {
                if path.replace(other.to_string()).is_some() {
                    return Err("multiple input paths given".into());
                }
            }
        }
    }
    let need_path = |p: Option<String>| p.ok_or_else(|| "missing input path".to_string());
    match sub {
        "learn" => Ok(Command::Learn {
            path: need_path(path)?,
            k,
            eps,
            n,
            seed,
            json,
        }),
        "test" => Ok(Command::Test {
            path: need_path(path)?,
            k,
            eps,
            n,
            norm,
            seed,
            json,
        }),
        "analyze" => Ok(Command::Analyze {
            path: need_path(path)?,
            k,
            eps,
            n,
            seed,
            json,
            runs,
        }),
        "watch" => {
            if shards > 1 && key_field.is_none() {
                return Err(
                    "--shards needs --key-field: sharding distributes keyed streams, and \
                     un-keyed input is a single stream"
                        .into(),
                );
            }
            if fleet && key_field.is_none() {
                return Err(
                    "--fleet needs --key-field: the fleet rollup aggregates keyed \
                     streams, and un-keyed input is a single stream"
                        .into(),
                );
            }
            Ok(Command::Watch {
                path: need_path(path)?,
                k,
                eps,
                n,
                seed,
                every,
                window,
                runs,
                json,
                key_field,
                shards,
                fleet,
            })
        }
        "serve" => {
            if path.is_some() {
                return Err(
                    "serve takes no input path: records arrive over --socket and/or stdin"
                        .into(),
                );
            }
            Ok(Command::Serve {
                // No socket means stdin is the only possible source.
                stdin: stdin || socket.is_none(),
                socket,
                control,
                k,
                eps,
                n,
                seed,
                every,
                window,
                runs,
                key_field: key_field.unwrap_or(0),
                shards,
                batch,
                flush_ms,
                conn_buffer,
                budget,
            })
        }
        "summarize" => Ok(Command::Summarize {
            path: need_path(path)?,
            n,
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown subcommand {other}")),
    }
}

fn next_parsed<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<T, String> {
    it.next()
        .ok_or_else(|| format!("{flag} requires a value"))?
        .parse()
        .map_err(|_| format!("invalid value for {flag}"))
}

/// Parses newline-delimited sample text (`#` comments, blank lines ok).
pub fn parse_samples_text(text: &str) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let value: usize = trimmed
            .parse()
            .map_err(|_| format!("line {}: not an integer: {trimmed}", lineno + 1))?;
        out.push(value);
    }
    if out.is_empty() {
        return Err("no samples in input".into());
    }
    Ok(out)
}

/// Infers the domain size: explicit override or `max + 1`.
pub fn infer_domain(samples: &[usize], override_n: usize) -> Result<usize, String> {
    let max = *samples.iter().max().expect("samples non-empty");
    if override_n == 0 {
        return Ok(max + 1);
    }
    if max >= override_n {
        return Err(format!(
            "sample {max} outside declared domain [0, {override_n})"
        ));
    }
    Ok(override_n)
}

/// Splits raw samples into the learner's main + `r` collision sets by
/// round-robin (keeps the sets independent when the input is i.i.d.).
pub fn split_for_learner(samples: &[usize], r: usize) -> (SampleSet, Vec<SampleSet>) {
    let lanes = r + 1;
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); lanes];
    for (t, &s) in samples.iter().enumerate() {
        buckets[t % lanes].push(s);
    }
    let main = SampleSet::from_samples(buckets[0].clone());
    let sets = buckets[1..]
        .iter()
        .map(|b| SampleSet::from_samples(b.clone()))
        .collect();
    (main, sets)
}

/// Builds the CLI's learn request: the paper's budget clamped to the data
/// actually available, Theorem 2 candidates.
fn learn_analysis(n: usize, k: usize, eps: f64, available: usize) -> Result<Analysis, String> {
    let budget = budget_for_data(n, k, eps, available)?;
    Ok(Learn::k(k).eps(eps).budget(budget).into())
}

/// Runs `learn` against any [`SampleOracle`] through the analysis engine:
/// one batched draw (a single pass for streaming backends), a typed
/// [`Report`] back.
///
/// `available` is the number of records the backend can actually serve
/// (used to clamp the paper's budget).
pub fn run_learn_with<O: SampleOracle + ?Sized>(
    oracle: &mut O,
    k: usize,
    eps: f64,
    available: usize,
    seed: u64,
) -> Result<Report, String> {
    let analysis = learn_analysis(oracle.domain_size(), k, eps, available)?;
    let (mut reports, _) = run_analyses(oracle, seed, &[analysis]).map_err(fmt_err)?;
    Ok(reports.pop().expect("one analysis, one report"))
}

/// Renders a learn [`Report`] as the human piece table.
pub fn render_learn(report: &Report) -> String {
    let Some(histogram) = &report.histogram else {
        return format!("{report}\n");
    };
    let mut text = format!(
        "learned {}-piece histogram over [0, {}) from {} samples\n",
        histogram.piece_count(),
        report.n,
        report.samples_spent,
    );
    for (iv, v) in histogram.pieces() {
        text.push_str(&format!(
            "  [{:>6}, {:>6}]  density {:.6e}  mass {:.4}\n",
            iv.lo(),
            iv.hi(),
            v,
            v * iv.len() as f64
        ));
    }
    text
}

/// Runs `learn` on in-memory samples: splits *all* of them round-robin
/// into one equal lane per budgeted set (the seed behaviour — unlike the
/// streaming path, which reservoir-subsamples down to the budgeted sizes)
/// and replays the split through the generic path.
pub fn run_learn(
    samples: &[usize],
    k: usize,
    eps: f64,
    n_override: usize,
) -> Result<String, String> {
    let n = infer_domain(samples, n_override)?;
    // run_learn_with recomputes this same (deterministic) budget; it fixes
    // the lane count the replayed split must provide.
    let budget = budget_for_data(n, k, eps, samples.len())?;
    let (main, sets) = split_for_learner(samples, budget.r);
    let mut recorded = vec![main];
    recorded.extend(sets);
    let mut oracle = ReplayOracle::from_sets(n, recorded);
    run_learn_with(&mut oracle, k, eps, samples.len(), 0).map(|r| render_learn(&r))
}

/// The tester's split of `available` records: `r` equal sets of `m`.
/// Single source of truth — [`run_test`]'s replayed chunks must match the
/// sets [`run_test_with`] requests.
fn tester_split(available: usize) -> Result<(usize, usize), String> {
    let r = 7usize.min(available / 2).max(1);
    let m = available / r;
    if m < 2 {
        return Err("not enough samples to test".into());
    }
    Ok((r, m))
}

/// Builds the CLI's test request for the chosen norm, sized to the data.
fn test_analysis(k: usize, eps: f64, norm: &str, available: usize) -> Result<Analysis, String> {
    let (r, m) = tester_split(available)?;
    Ok(match norm {
        "l1" => TestL1::k(k).eps(eps).budget(L1TesterBudget { r, m }).into(),
        _ => TestL2::k(k).eps(eps).budget(L2TesterBudget { r, m }).into(),
    })
}

/// Runs `test` against any [`SampleOracle`] through the analysis engine:
/// `r` equal sets in one batched draw, a typed [`Report`] back.
pub fn run_test_with<O: SampleOracle + ?Sized>(
    oracle: &mut O,
    k: usize,
    eps: f64,
    norm: &str,
    available: usize,
    seed: u64,
) -> Result<Report, String> {
    let analysis = test_analysis(k, eps, norm, available)?;
    let (mut reports, _) = run_analyses(oracle, seed, &[analysis]).map_err(fmt_err)?;
    Ok(reports.pop().expect("one analysis, one report"))
}

/// Renders a tester [`Report`] as the human verdict line.
pub fn render_test(report: &Report, k: usize) -> String {
    let norm = match report.analysis {
        AnalysisKind::TestL1 => "l1",
        _ => "l2",
    };
    let verdict = report
        .verdict
        .map(|v| format!("{v:?}"))
        .unwrap_or_else(|| "?".into());
    let cuts = if report.cuts.is_empty() {
        String::new()
    } else {
        format!(", cuts at {:?}", report.cuts)
    };
    format!(
        "{norm} tiling {k}-histogram test over [0, {}): {verdict} ({} samples, {} probes{cuts})\n",
        report.n,
        report.samples_spent,
        report.probes.unwrap_or(0),
    )
}

/// Runs `test` on in-memory samples via a [`ReplayOracle`] of equal chunks.
pub fn run_test(
    samples: &[usize],
    k: usize,
    eps: f64,
    n_override: usize,
    norm: &str,
) -> Result<String, String> {
    let n = infer_domain(samples, n_override)?;
    let (r, m) = tester_split(samples.len())?;
    let chunks: Vec<Vec<usize>> = (0..r).map(|j| samples[j * m..(j + 1) * m].to_vec()).collect();
    let mut oracle = ReplayOracle::from_raw(n, chunks);
    run_test_with(&mut oracle, k, eps, norm, samples.len(), 0).map(|rep| render_test(&rep, k))
}

/// Builds the `analyze` batch from the `--run` list, every budget clamped
/// to the records actually available.
fn analyze_batch(
    n: usize,
    k: usize,
    eps: f64,
    available: usize,
    runs: &[String],
) -> Result<Vec<Analysis>, String> {
    runs.iter()
        .map(|run| match run.as_str() {
            "learn" => learn_analysis(n, k, eps, available),
            "l1" | "l2" => test_analysis(k, eps, run, available),
            "uniformity" => {
                let derived = UniformityBudget::calibrated(n, eps, 1.0).map_err(fmt_err)?;
                let m = derived.m.min(available).max(2);
                Ok(Uniformity::eps(eps).budget(UniformityBudget { m }).into())
            }
            "monotone" => {
                let m = monotonicity_budget(n, eps, 1.0).map_err(fmt_err)?.min(available).max(1);
                Ok(Monotone::eps(eps).samples(m).into())
            }
            other => Err(format!(
                "unknown analysis '{other}'; valid analyses: {VALID_RUNS}"
            )),
        })
        .collect()
}

/// Runs an `analyze` batch against any [`SampleOracle`]: one shared
/// sample plan, one draw, all reports plus the run's ledger.
///
/// Each analysis's budget is clamped to `available` *individually*, but
/// the combined plan (max main + max sets across the batch) can still
/// exceed what a finite record file holds; in that case the streaming
/// backend fills every reservoir lane proportionally and the analyses run
/// on correspondingly fewer samples than their nominal budgets. That is
/// graceful degradation, not an error: the per-set-normalized testers
/// stay valid, and every `Report.samples_spent` / ledger entry records
/// the *actual* counts consumed, so under-sampling is visible.
#[allow(clippy::type_complexity)] // the oracle-threading signature is the API, not incidental
pub fn run_analyze_with<O: SampleOracle + ?Sized>(
    oracle: &mut O,
    k: usize,
    eps: f64,
    runs: &[String],
    available: usize,
    seed: u64,
) -> Result<(Vec<Report>, Vec<LedgerEntry>), String> {
    let batch = analyze_batch(oracle.domain_size(), k, eps, available, runs)?;
    run_analyses(oracle, seed, &batch).map_err(fmt_err)
}

/// Renders an `analyze` run: one line per report, then the sample ledger.
pub fn render_analyze(reports: &[Report], ledger: &[LedgerEntry]) -> String {
    let n = reports.first().map_or(0, |r| r.n);
    let mut text = format!(
        "analyzed [0, {n}): {} analyses from one shared draw\n",
        reports.len()
    );
    for report in reports {
        text.push_str(&format!("  {report}\n"));
    }
    text.push_str("ledger:\n");
    for entry in ledger {
        text.push_str(&format!(
            "  {:<12} {:>10} samples  {:.3}s\n",
            entry.label, entry.samples, entry.seconds
        ));
    }
    text
}

/// Serializes a batch of reports as one JSON array (the `--json` output of
/// `khist analyze`).
pub fn reports_to_json(reports: &[Report]) -> String {
    let values: Vec<Value> = reports.iter().map(Serialize::serialize).collect();
    serde::json::to_string(&Value::Seq(values))
        .expect("reports serialize finite numbers only (non-finite statistics become null)")
}

/// Configuration of one `khist watch` run (already validated by
/// [`parse_args`] / [`dispatch`]).
#[derive(Debug, Clone)]
pub struct WatchOptions {
    /// Number of pieces for `learn`/`l1`/`l2`.
    pub k: usize,
    /// Accuracy parameter.
    pub eps: f64,
    /// Domain size (must be resolved — watch cannot infer from a stream).
    pub n: usize,
    /// Seed for the window reservoirs.
    pub seed: u64,
    /// Report cadence in records.
    pub every: u64,
    /// Sliding windows (span = 4 × `every`) instead of tumbling.
    pub sliding: bool,
    /// Which analyses each window runs.
    pub runs: Vec<String>,
    /// Emit JSONL instead of human text.
    pub json: bool,
    /// Keyed input: which of the two whitespace-separated fields per line
    /// is the stream key (`None` = un-keyed single-stream input).
    pub key_field: Option<usize>,
    /// Worker shards stream keys are hashed onto (`1` = unsharded; only
    /// meaningful with `key_field`).
    pub shards: usize,
    /// Interleave fleet-level rollup lines next to the per-stream output:
    /// one after every chunk that reported a window, plus a final rollup
    /// after the tails (requires `key_field`).
    pub fleet: bool,
}

/// How many steps a sliding `khist watch` window covers.
const SLIDING_STEPS: u64 = 4;

/// Renders one [`WindowReport`] in the format the options select: one
/// JSON line, or an indented human block.
pub fn render_window(report: &WindowReport, json: bool) -> String {
    if json {
        format!("{}\n", report.to_json())
    } else {
        format!("{report}\n")
    }
}

/// Renders one [`FleetReport`] in the format the options select: the
/// `{"fleet":true,…}` JSON line (the wire shape `khist serve`'s `FLEET`
/// verb answers with, byte for byte), or a one-line human summary.
pub fn render_fleet(report: &FleetReport, json: bool) -> String {
    if json {
        return format!("{}\n", report.to_json());
    }
    let mut text = format!(
        "fleet: {}/{} streams alarming, {} windows ({} partial), {} records, {} alarm windows",
        report.alarming_streams,
        report.streams,
        report.windows_complete + report.windows_partial,
        report.windows_partial,
        report.records_seen,
        report.alarm_windows,
    );
    if let (Some(p50), Some(p99)) = (report.drift_p50, report.drift_p99) {
        text.push_str(&format!(", drift p50 {p50:.3} p99 {p99:.3}"));
    }
    if let Some(top) = report.top_drift.first() {
        text.push_str(&format!(
            ", top drift {} ({:.3} @ window {})",
            top.stream, top.score, top.window
        ));
    }
    text.push('\n');
    text
}

/// Streams records from `input` through a push-based [`Monitor`], writing
/// one report per completed window to `out` *as it completes* (live
/// monitoring: output must not wait for EOF). The final partial window is
/// flushed at end of stream. Returns a human summary line (empty in JSON
/// mode, which emits pure JSONL).
///
/// Memory is bounded by the standing batch's sample plan — the stream is
/// never stored, so `watch` handles unbounded input.
pub fn run_watch<R: std::io::BufRead, W: std::io::Write>(
    input: R,
    out: &mut W,
    opts: &WatchOptions,
) -> Result<String, String> {
    if opts.n == 0 {
        return Err("watch needs a declared domain (--n)".into());
    }
    if let Some(field) = opts.key_field {
        return run_watch_keyed(input, out, opts, field);
    }
    if opts.fleet {
        return Err(
            "--fleet needs --key-field: the fleet rollup aggregates keyed streams, and \
             un-keyed input is a single stream"
                .into(),
        );
    }
    let span = if opts.sliding {
        opts.every
            .checked_mul(SLIDING_STEPS)
            .ok_or_else(|| format!("--every {} overflows the sliding span", opts.every))?
    } else {
        opts.every
    };
    let batch = analyze_batch(opts.n, opts.k, opts.eps, span as usize, &opts.runs)?;
    let mut builder = Monitor::builder(opts.n).seed(opts.seed).analyses(batch);
    builder = if opts.sliding {
        builder.sliding(span, opts.every)
    } else {
        builder.tumbling(span)
    };
    let mut monitor = builder.build().map_err(fmt_err)?;

    // `Ok(None)` means the consumer hung up (broken pipe) — for a
    // streaming tool that is a normal way to stop (`watch … | head`),
    // not an error.
    let emit = |out: &mut W, reports: Vec<WindowReport>| -> Result<Option<u64>, String> {
        let mut windows = 0;
        for report in reports {
            let write = out
                .write_all(render_window(&report, opts.json).as_bytes())
                .and_then(|()| out.flush());
            match write {
                Ok(()) => windows += 1,
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => return Ok(None),
                Err(e) => return Err(fmt_err(e)),
            }
        }
        Ok(Some(windows))
    };

    let mut windows = 0u64;
    let mut buffer: Vec<usize> = Vec::with_capacity(1024);
    // One read buffer reused for every line: `read_line` appends into it,
    // so clearing (not dropping) between lines keeps the steady state free
    // of per-line allocation.
    let mut input = input;
    let mut line = String::with_capacity(256);
    let mut lineno = 0usize;
    loop {
        line.clear();
        let read = input
            .read_line(&mut line)
            .map_err(|e| format!("read failed at line {}: {e}", lineno + 1))?;
        if read == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let value: usize = trimmed
            .parse()
            .map_err(|_| format!("line {lineno}: not an integer record: {trimmed}"))?;
        buffer.push(value);
        if buffer.len() >= 1024 {
            let reports = monitor.ingest(&buffer).map_err(fmt_err)?;
            buffer.clear();
            match emit(out, reports)? {
                Some(emitted) => windows += emitted,
                None => return Ok(String::new()),
            }
        }
    }
    // Emit the final buffer's completed windows before flushing the tail,
    // so a tail-flush failure can never lose an already-computed report.
    let reports = monitor.ingest(&buffer).map_err(fmt_err)?;
    match emit(out, reports)? {
        Some(emitted) => windows += emitted,
        None => return Ok(String::new()),
    }
    let tail = monitor.flush().map_err(fmt_err)?;
    match emit(out, tail)? {
        Some(emitted) => windows += emitted,
        None => return Ok(String::new()),
    }
    if opts.json {
        return Ok(String::new());
    }
    Ok(format!(
        "watched {} records over {windows} windows ({} samples/window kept at most)\n",
        monitor.seen(),
        monitor.plan().total_samples().map_err(fmt_err)?,
    ))
}

/// Parses one keyed record line (`key value` or `value key`, whitespace
/// separated): `Ok(None)` for blanks and `#` comments, a line-numbered
/// error for un-keyed lines (a single field), extra fields, or a
/// non-integer value field.
///
/// The key is returned as a slice borrowed from `line` — the hot path
/// allocates only when building an error message.
fn parse_keyed_record(
    line: &str,
    lineno: usize,
    field: usize,
) -> Result<Option<(&str, usize)>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let mut fields = trimmed.split_whitespace();
    let (Some(first), Some(second)) = (fields.next(), fields.next()) else {
        return Err(format!(
            "line {lineno}: --key-field {field} needs keyed records (key and value per \
             line), but this input is un-keyed: {trimmed}"
        ));
    };
    if fields.next().is_some() {
        // Two consumed above plus the one just seen plus whatever remains.
        let total = 3 + fields.count();
        return Err(format!(
            "line {lineno}: keyed records carry exactly two fields (key and value), got \
             {total}: {trimmed}"
        ));
    }
    let (key, value_text) = if field == 0 {
        (first, second)
    } else {
        (second, first)
    };
    let value: usize = value_text
        .parse()
        .map_err(|_| format!("line {lineno}: not an integer record: {value_text}"))?;
    Ok(Some((key, value)))
}

/// The keyed flavour of [`run_watch`]: demultiplexes `key value` lines
/// onto a sharded [`Engine`] (one [`Monitor`]-equivalent state machine
/// per stream key) and emits every stream's window reports as they
/// complete, tagged by stream. Per-stream output is bit-identical for
/// every `--shards` value; the interleaving is deterministic (sorted by
/// stream, then window, within each ingested chunk).
fn run_watch_keyed<R: std::io::BufRead, W: std::io::Write>(
    input: R,
    out: &mut W,
    opts: &WatchOptions,
    field: usize,
) -> Result<String, String> {
    let span = if opts.sliding {
        opts.every
            .checked_mul(SLIDING_STEPS)
            .ok_or_else(|| format!("--every {} overflows the sliding span", opts.every))?
    } else {
        opts.every
    };
    let batch = analyze_batch(opts.n, opts.k, opts.eps, span as usize, &opts.runs)?;
    let mut builder = Engine::builder(opts.n)
        .seed(opts.seed)
        .shards(opts.shards)
        .analyses(batch);
    builder = if opts.sliding {
        builder.sliding(span, opts.every)
    } else {
        builder.tumbling(span)
    };
    let mut engine = builder.build().map_err(fmt_err)?;

    // `Ok(None)` means the consumer hung up (broken pipe) — a normal way
    // to stop a streaming tool, not an error.
    let emit = |out: &mut W, reports: Vec<WindowReport>| -> Result<Option<u64>, String> {
        let mut windows = 0;
        for report in reports {
            let write = out
                .write_all(render_window(&report, opts.json).as_bytes())
                .and_then(|()| out.flush());
            match write {
                Ok(()) => windows += 1,
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => return Ok(None),
                Err(e) => return Err(fmt_err(e)),
            }
        }
        Ok(Some(windows))
    };
    // With --fleet, a rollup line follows every chunk that reported a
    // window (and the final tails): the fleet state as of everything
    // ingested so far. `Ok(false)` = consumer hung up.
    let emit_fleet = |out: &mut W, engine: &Engine| -> Result<bool, String> {
        let write = out
            .write_all(render_fleet(&engine.fleet_report(), opts.json).as_bytes())
            .and_then(|()| out.flush());
        match write {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(false),
            Err(e) => Err(fmt_err(e)),
        }
    };

    let mut windows = 0u64;
    // Each chunk costs one mailbox round per busy shard, so the chunk must
    // be big enough to amortize the handoff: scale it with the shard count
    // so every worker gets thousands of records per round. Memory stays
    // bounded (chunk × ~word-sized records), and report latency stays well
    // under a window span.
    let chunk = 4096 * opts.shards;
    // Zero-copy line handling: one reused read buffer, keys copied into a
    // per-chunk byte arena (cleared, not freed, between chunks) and
    // addressed by spans. No per-line `String` is ever allocated.
    let mut input = input;
    let mut line = String::with_capacity(256);
    let mut lineno = 0usize;
    let mut arena = String::with_capacity(chunk * 8);
    let mut spans: Vec<(usize, usize, usize)> = Vec::with_capacity(chunk);
    // Borrows `arena` for the duration of one `ingest_batch` call.
    let ingest_chunk = |engine: &mut Engine,
                        arena: &str,
                        spans: &[(usize, usize, usize)]|
     -> Result<Vec<WindowReport>, String> {
        let records: Vec<(&str, usize)> = spans
            .iter()
            // lint:allow(checked-indexing): spans are valid arena offsets by construction
            .map(|&(start, end, value)| (&arena[start..end], value))
            .collect();
        engine.ingest_batch(&records).map_err(fmt_err)
    };
    loop {
        line.clear();
        let read = input
            .read_line(&mut line)
            .map_err(|e| format!("read failed at line {}: {e}", lineno + 1))?;
        if read == 0 {
            break;
        }
        lineno += 1;
        let Some((key, value)) = parse_keyed_record(&line, lineno, field)? else {
            continue;
        };
        let start = arena.len();
        arena.push_str(key);
        spans.push((start, arena.len(), value));
        if spans.len() >= chunk {
            let reports = ingest_chunk(&mut engine, &arena, &spans)?;
            spans.clear();
            arena.clear();
            let reported = !reports.is_empty();
            match emit(out, reports)? {
                Some(emitted) => windows += emitted,
                None => return Ok(String::new()),
            }
            if opts.fleet && reported && !emit_fleet(out, &engine)? {
                return Ok(String::new());
            }
        }
    }
    // Emit the final buffer's completed windows before flushing the tails,
    // so a tail-flush failure can never lose an already-computed report.
    let reports = ingest_chunk(&mut engine, &arena, &spans)?;
    let reported = !reports.is_empty();
    match emit(out, reports)? {
        Some(emitted) => windows += emitted,
        None => return Ok(String::new()),
    }
    if opts.fleet && reported && !emit_fleet(out, &engine)? {
        return Ok(String::new());
    }
    // Tails come out in debut order — the order streams first appeared —
    // not key-lexicographic order, so the end-of-stream output lines up
    // with the input's own history.
    let tails = engine.flush_debut_ordered().map_err(fmt_err)?;
    match emit(out, tails)? {
        Some(emitted) => windows += emitted,
        None => return Ok(String::new()),
    }
    // The closing rollup: the whole stream's fleet state, tails included.
    if opts.fleet && !emit_fleet(out, &engine)? {
        return Ok(String::new());
    }
    if opts.json {
        return Ok(String::new());
    }
    Ok(format!(
        "watched {} records from {} streams over {windows} windows on {} shard{}\n",
        engine.seen(),
        engine.streams(),
        engine.shards(),
        if engine.shards() == 1 { "" } else { "s" },
    ))
}

/// Runs `summarize` and renders basic statistics.
pub fn run_summarize(samples: &[usize], n_override: usize) -> Result<String, String> {
    let n = infer_domain(samples, n_override)?;
    let set = SampleSet::from_samples(samples.to_vec());
    let emp = empirical_distribution(&set, n).map_err(fmt_err)?;
    Ok(format!(
        "samples: {}\ndomain: [0, {n})\ndistinct values: {}\nentropy: {:.4} nats (max {:.4})\ncollision rate ‖p̂‖₂²: {:.6e} (uniform floor {:.6e})\n",
        set.total(),
        set.distinct(),
        emp.entropy(),
        (n as f64).ln(),
        emp.l2_norm_sq(),
        1.0 / n as f64
    ))
}

/// Usage text for `help`.
pub fn usage() -> &'static str {
    "khist — k-histogram learning and testing from samples (PODS 2012)\n\
     \n\
     usage:\n\
     \x20 khist learn     <records.txt> [--k K] [--eps E] [--n N] [--seed S] [--json]\n\
     \x20 khist test      <records.txt> [--k K] [--eps E] [--n N] [--norm l1|l2] [--seed S] [--json]\n\
     \x20 khist analyze   <records.txt> [--k K] [--eps E] [--n N] [--seed S] [--json]\n\
     \x20                 [--run learn,l1,l2,uniformity,monotone]\n\
     \x20 khist watch     <records.txt|-> [--every N] [--window tumbling|sliding]\n\
     \x20                 [--key-field 0|1] [--shards N] [--fleet]\n\
     \x20                 [--k K] [--eps E] [--n N] [--seed S] [--json] [--run ...]\n\
     \x20 khist serve     --n N [--socket PATH] [--control PATH] [--stdin]\n\
     \x20                 [--key-field 0|1] [--shards N] [--every N] [--window ...]\n\
     \x20                 [--batch R] [--flush-ms MS] [--conn-buffer B] [--budget B]\n\
     \x20                 [--k K] [--eps E] [--seed S] [--run ...]\n\
     \x20 khist summarize <records.txt> [--n N]\n\
     \n\
     input: one integer record per line; '#' comments and blank lines ignored.\n\
     The domain defaults to [0, max_record]; override with --n.\n\
     learn/test/analyze stream the file through fixed-size reservoirs\n\
     (constant memory in the file length); --seed (default 0) fixes the\n\
     subsample. analyze runs its whole batch (default learn,l2,uniformity)\n\
     from ONE shared sample draw — a single pass over the file. --json\n\
     emits the structured report(s) instead of human text.\n\
     \n\
     watch ingests the stream push-style ('-' = stdin; stdin requires --n)\n\
     and reports every N records (--every, default 100000): the analysis\n\
     batch plus an l2 drift check against the previous window. Sliding\n\
     windows cover 4 steps of N. Memory stays bounded by the sample\n\
     budget however long the stream runs; --json emits one JSON object\n\
     per window (JSONL).\n\
     \n\
     keyed watch: with --key-field F (0 or 1), each line carries TWO\n\
     whitespace-separated fields — a stream key and an integer record;\n\
     field F is the key. Every key gets its own windows, reports and\n\
     drift baseline (per-stream cadence, reports tagged \"stream\"), and\n\
     --shards N (default 1, must be > 0) fans the streams across N worker\n\
     shards. Per-stream output is bit-identical for every shard count.\n\
     Keyed watch requires an explicit --n; --shards > 1 requires\n\
     --key-field. Un-keyed (single-field) lines are rejected with their\n\
     line number. --fleet (requires --key-field) interleaves fleet-level\n\
     rollup lines — stream/window/alarm counters, drift-severity\n\
     quantiles, the top drifting streams — after every chunk that\n\
     reported a window plus a final rollup after the tails; in JSON mode\n\
     these are {\"fleet\":true,...} JSONL lines, identical byte-for-byte\n\
     to serve's FLEET replies over the same records.\n\
     \n\
     serve runs keyed watch as a long-lived process: a single-threaded\n\
     reactor accepts 'key value' lines on a Unix socket (--socket) and/or\n\
     stdin, drains them into the sharded engine every --batch records or\n\
     --flush-ms milliseconds, and emits per-window JSONL on stdout —\n\
     bit-identical per stream to watch --key-field --json. A bad line\n\
     poisons only its own connection (ERR reply with the line number);\n\
     --conn-buffer and --budget bound per-connection and global buffering\n\
     (slow producers are parked, never buffered unboundedly). --control\n\
     opens a second socket answering STATS (fleet totals), STATS <key>\n\
     (mid-window snapshot + sample ledger), FLEET (the fleet rollup as\n\
     one {\"fleet\":true,...} JSON line — watch --fleet's closing line,\n\
     byte-for-byte), SUB (subscribe to the JSONL feed, fleet lines\n\
     included) and SHUTDOWN (flush tails in debut order, then exit).\n\
     With no --socket, serve reads stdin and exits at EOF.\n"
}

/// Clamps the paper's budget to the data actually available in the file.
fn budget_for_data(
    n: usize,
    k: usize,
    eps: f64,
    available: usize,
) -> Result<LearnerBudget, String> {
    let mut budget = LearnerBudget::calibrated(n, k, eps, 1.0).map_err(fmt_err)?;
    let total = budget.total_samples().map_err(fmt_err)?;
    if total > available {
        let scale = available as f64 / total as f64;
        budget = LearnerBudget::calibrated(n, k, eps, scale.clamp(1e-9, 1.0)).map_err(fmt_err)?;
        // The calibrated floors may still exceed tiny files; final clamp.
        while budget.total_samples().map_err(fmt_err)? > available && budget.r > 3 {
            budget.r -= 2;
        }
        // Data is scarcer than the paper's budget, so none of it should go
        // unused: the main sample absorbs whatever the collision sets leave.
        let fixed = budget.r * budget.m;
        if fixed < available {
            budget.ell = (available - fixed).max(16);
        }
    }
    Ok(budget)
}

fn fmt_err(e: impl std::fmt::Display) -> String {
    e.to_string()
}

/// Entry point shared by the binary: dispatches a parsed command.
///
/// `learn`, `test` and `analyze` stream the record file through a
/// [`RecordFileOracle`] — the file is scanned once for validation (domain
/// violations against `--n` fail here with the offending line) and then
/// streamed per draw, never materialized. `analyze` serves its whole
/// batch from one draw, i.e. one pass.
pub fn dispatch(cmd: Command) -> Result<String, String> {
    let open = |path: &str, n: usize, seed: u64| -> Result<RecordFileOracle, String> {
        RecordFileOracle::open(path, n, seed).map_err(fmt_err)
    };
    match cmd {
        Command::Help => Ok(usage().to_string()),
        Command::Learn {
            path,
            k,
            eps,
            n,
            seed,
            json,
        } => {
            let mut oracle = open(&path, n, seed)?;
            let available = oracle.records() as usize;
            let report = run_learn_with(&mut oracle, k, eps, available, seed)?;
            Ok(if json {
                format!("{}\n", report.to_json())
            } else {
                render_learn(&report)
            })
        }
        Command::Test {
            path,
            k,
            eps,
            n,
            norm,
            seed,
            json,
        } => {
            let mut oracle = open(&path, n, seed)?;
            let available = oracle.records() as usize;
            let report = run_test_with(&mut oracle, k, eps, &norm, available, seed)?;
            Ok(if json {
                format!("{}\n", report.to_json())
            } else {
                render_test(&report, k)
            })
        }
        Command::Analyze {
            path,
            k,
            eps,
            n,
            seed,
            json,
            runs,
        } => {
            let mut oracle = open(&path, n, seed)?;
            let available = oracle.records() as usize;
            let (reports, ledger) =
                run_analyze_with(&mut oracle, k, eps, &runs, available, seed)?;
            debug_assert_eq!(oracle.passes(), 1, "analyze must make exactly one pass");
            Ok(if json {
                format!("{}\n", reports_to_json(&reports))
            } else {
                render_analyze(&reports, &ledger)
            })
        }
        Command::Watch {
            path,
            k,
            eps,
            n,
            seed,
            every,
            window,
            runs,
            json,
            key_field,
            shards,
            fleet,
        } => {
            let n = if n > 0 {
                n
            } else if key_field.is_some() {
                return Err(
                    "watch --key-field needs an explicit --n: keyed records cannot be \
                     pre-scanned by the record-file oracle to infer their domain"
                        .into(),
                );
            } else if path == "-" {
                return Err(
                    "watch - (stdin) needs an explicit --n: a live stream cannot be \
                     pre-scanned to infer its domain"
                        .into(),
                );
            } else {
                // A file input can be pre-scanned the way `learn`/`test`
                // do it; reuse the oracle's validating scan.
                open(&path, 0, seed)?.domain_size()
            };
            let opts = WatchOptions {
                k,
                eps,
                n,
                seed,
                every,
                sliding: window == "sliding",
                runs,
                json,
                key_field,
                shards,
                fleet,
            };
            let stdout = std::io::stdout();
            if path == "-" {
                let stdin = std::io::stdin();
                run_watch(stdin.lock(), &mut stdout.lock(), &opts)
            } else {
                let file = std::fs::File::open(&path).map_err(|e| format!("{path}: {e}"))?;
                run_watch(std::io::BufReader::new(file), &mut stdout.lock(), &opts)
            }
        }
        Command::Serve {
            socket,
            control,
            stdin,
            k,
            eps,
            n,
            seed,
            every,
            window,
            runs,
            key_field,
            shards,
            batch,
            flush_ms,
            conn_buffer,
            budget,
        } => {
            if n == 0 {
                return Err(
                    "serve needs an explicit --n: a live stream cannot be pre-scanned to \
                     infer its domain"
                        .into(),
                );
            }
            let span = if window == "sliding" {
                every
                    .checked_mul(SLIDING_STEPS)
                    .ok_or_else(|| format!("--every {every} overflows the sliding span"))?
            } else {
                every
            };
            let analyses = analyze_batch(n, k, eps, span as usize, &runs)?;
            let mut builder = Engine::builder(n).seed(seed).shards(shards).analyses(analyses);
            builder = if window == "sliding" {
                builder.sliding(span, every)
            } else {
                builder.tumbling(span)
            };
            let engine = builder.build().map_err(fmt_err)?;
            let cfg = khist_serve::ServerConfig {
                socket: socket.map(std::path::PathBuf::from),
                control: control.map(std::path::PathBuf::from),
                stdin,
                key_field,
                batch_records: batch,
                flush_ms,
                conn_buffer,
                global_budget: budget,
            };
            let stdout = std::io::stdout();
            let summary = khist_serve::run(engine, cfg, &mut stdout.lock())?;
            // Stdout is the JSONL window feed; the human summary goes to
            // stderr so the feed stays machine-parseable.
            eprintln!(
                "served {} records from {} streams over {} windows on {} shard{}",
                summary.records,
                summary.streams,
                summary.windows,
                summary.shards,
                if summary.shards == 1 { "" } else { "s" },
            );
            Ok(String::new())
        }
        Command::Summarize { path, n } => {
            let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            run_summarize(&parse_samples_text(&text)?, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use std::io::Write;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    /// Writes samples to a unique temp record file.
    fn temp_file(samples: &[usize], tag: &str) -> String {
        let path = std::env::temp_dir().join(format!(
            "khist-app-{tag}-{}.txt",
            std::process::id()
        ));
        let mut f = std::fs::File::create(&path).expect("temp file writable");
        for &s in samples {
            writeln!(f, "{s}").unwrap();
        }
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn parse_args_learn_defaults() {
        let cmd = parse_args(&strings(&["learn", "data.txt"])).unwrap();
        assert_eq!(
            cmd,
            Command::Learn {
                path: "data.txt".into(),
                k: 8,
                eps: 0.1,
                n: 0,
                seed: 0,
                json: false,
            }
        );
    }

    #[test]
    fn parse_args_flags() {
        let cmd = parse_args(&strings(&[
            "test", "d.txt", "--k", "4", "--eps", "0.3", "--norm", "l1", "--seed", "9", "--json",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Test {
                path: "d.txt".into(),
                k: 4,
                eps: 0.3,
                n: 0,
                norm: "l1".into(),
                seed: 9,
                json: true,
            }
        );
    }

    #[test]
    fn parse_args_analyze() {
        let cmd = parse_args(&strings(&["analyze", "d.txt", "--k", "3"])).unwrap();
        match cmd {
            Command::Analyze { k, runs, json, .. } => {
                assert_eq!(k, 3);
                assert!(!json);
                assert_eq!(runs, vec!["learn", "l2", "uniformity"]);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse_args(&strings(&[
            "analyze", "d.txt", "--run", "l1,monotone", "--json",
        ]))
        .unwrap();
        match cmd {
            Command::Analyze { runs, json, .. } => {
                assert!(json);
                assert_eq!(runs, vec!["l1", "monotone"]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&strings(&["analyze", "d.txt", "--run", "bogus"])).is_err());
    }

    #[test]
    fn parse_args_serve() {
        // No socket: stdin is implied.
        let cmd = parse_args(&strings(&["serve", "--n", "64"])).unwrap();
        match cmd {
            Command::Serve {
                stdin,
                socket,
                control,
                key_field,
                batch,
                flush_ms,
                ..
            } => {
                assert!(stdin && socket.is_none() && control.is_none());
                assert_eq!((key_field, batch, flush_ms), (0, 4096, 50));
            }
            other => panic!("unexpected {other:?}"),
        }
        // A socket suppresses implied stdin unless --stdin is explicit.
        let cmd = parse_args(&strings(&[
            "serve", "--n", "64", "--socket", "/tmp/k.sock", "--control", "/tmp/c.sock",
            "--key-field", "1", "--shards", "4", "--batch", "512", "--flush-ms", "10",
            "--conn-buffer", "1024", "--budget", "8192",
        ]))
        .unwrap();
        match cmd {
            Command::Serve {
                stdin,
                socket,
                control,
                key_field,
                shards,
                batch,
                flush_ms,
                conn_buffer,
                budget,
                ..
            } => {
                assert!(!stdin);
                assert_eq!(socket.as_deref(), Some("/tmp/k.sock"));
                assert_eq!(control.as_deref(), Some("/tmp/c.sock"));
                assert_eq!(
                    (key_field, shards, batch, flush_ms, conn_buffer, budget),
                    (1, 4, 512, 10, 1024, 8192)
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&strings(&["serve", "extra.txt", "--n", "64"])).is_err());
        assert!(parse_args(&strings(&["serve", "--n", "64", "--batch", "0"])).is_err());
        assert!(parse_args(&strings(&["analyze"])).is_err());
    }

    #[test]
    fn parse_args_watch() {
        let cmd = parse_args(&strings(&[
            "watch", "-", "--every", "5000", "--window", "sliding", "--n", "64", "--json",
        ]))
        .unwrap();
        match cmd {
            Command::Watch {
                path,
                every,
                window,
                n,
                json,
                ..
            } => {
                assert_eq!(path, "-");
                assert_eq!(every, 5000);
                assert_eq!(window, "sliding");
                assert_eq!(n, 64);
                assert!(json);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&strings(&["watch", "-", "--every", "0"])).is_err());
        assert!(parse_args(&strings(&["watch", "-", "--window", "hopping"])).is_err());
        assert!(parse_args(&strings(&["watch"])).is_err());
    }

    #[test]
    fn run_errors_list_valid_analyses() {
        let err = parse_args(&strings(&["analyze", "d.txt", "--run", "bogus"])).unwrap_err();
        assert!(
            err.contains("bogus") && err.contains("learn, l1, l2, uniformity, monotone"),
            "unhelpful error: {err}"
        );
        // --run matching is case-insensitive.
        let cmd = parse_args(&strings(&["analyze", "d.txt", "--run", "Learn,L2"])).unwrap();
        match cmd {
            Command::Analyze { runs, .. } => assert_eq!(runs, vec!["learn", "l2"]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn watch_streams_windows_and_flushes_tail() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let p = khist_dist::generators::staircase(64, 4).unwrap();
        let samples = p.sample_many(10_500, &mut rng);
        let text: String = samples
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        let opts = WatchOptions {
            k: 4,
            eps: 0.25,
            n: 64,
            seed: 7,
            every: 4_000,
            sliding: false,
            runs: strings(&["learn", "l2", "uniformity"]),
            json: false,
            key_field: None,
            shards: 1,
            fleet: false,
        };
        let mut out = Vec::new();
        let summary = run_watch(text.as_bytes(), &mut out, &opts).unwrap();
        let rendered = String::from_utf8(out).unwrap();
        // Two complete windows plus the flushed 2 500-record tail.
        assert_eq!(rendered.matches("window ").count(), 3, "{rendered}");
        assert!(rendered.contains("partial"), "{rendered}");
        assert!(rendered.contains("drift vs baseline window"), "{rendered}");
        assert!(summary.contains("10500 records"), "{summary}");
        assert!(summary.contains("3 windows"), "{summary}");
    }

    #[test]
    fn watch_json_emits_one_parsable_line_per_window() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let p = khist_dist::generators::staircase(64, 4).unwrap();
        let samples = p.sample_many(9_000, &mut rng);
        let text: String = samples
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        let opts = WatchOptions {
            k: 4,
            eps: 0.25,
            n: 64,
            seed: 3,
            every: 3_000,
            sliding: false,
            runs: strings(&["l2", "uniformity"]),
            json: true,
            key_field: None,
            shards: 1,
            fleet: false,
        };
        let mut out = Vec::new();
        let summary = run_watch(text.as_bytes(), &mut out, &opts).unwrap();
        assert!(summary.is_empty(), "JSON mode must emit pure JSONL");
        let rendered = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let report = WindowReport::from_json(line)
                .unwrap_or_else(|e| panic!("line {i} not a WindowReport: {e}\n{line}"));
            assert_eq!(report.window as usize, i);
            assert_eq!(report.reports.len(), 2);
            assert_eq!(report.drift.is_some(), i > 0);
        }
    }

    #[test]
    fn watch_rejects_streams_it_cannot_size() {
        let opts = WatchOptions {
            k: 2,
            eps: 0.3,
            n: 0,
            seed: 0,
            every: 100,
            sliding: false,
            runs: strings(&["uniformity"]),
            json: false,
            key_field: None,
            shards: 1,
            fleet: false,
        };
        let mut out = Vec::new();
        let err = run_watch("1\n2\n".as_bytes(), &mut out, &opts).unwrap_err();
        assert!(err.contains("--n"), "{err}");

        let err = dispatch(Command::Watch {
            path: "-".into(),
            k: 2,
            eps: 0.3,
            n: 0,
            seed: 0,
            every: 100,
            window: "tumbling".into(),
            runs: strings(&["uniformity"]),
            json: false,
            key_field: None,
            shards: 1,
            fleet: false,
        })
        .unwrap_err();
        assert!(err.contains("--n") && err.contains("stdin"), "{err}");
    }

    #[test]
    fn watch_reports_bad_records_with_line_numbers() {
        let opts = WatchOptions {
            k: 2,
            eps: 0.3,
            n: 16,
            seed: 0,
            every: 100,
            sliding: false,
            runs: strings(&["uniformity"]),
            json: false,
            key_field: None,
            shards: 1,
            fleet: false,
        };
        let mut out = Vec::new();
        let err = run_watch("1\nfoo\n".as_bytes(), &mut out, &opts).unwrap_err();
        assert!(err.contains("line 2") && err.contains("foo"), "{err}");
        let mut out = Vec::new();
        let err = run_watch("1\n99\n".as_bytes(), &mut out, &opts).unwrap_err();
        assert!(err.contains("record 99"), "{err}");
    }

    #[test]
    fn parse_args_keyed_watch_flags() {
        let cmd = parse_args(&strings(&[
            "watch", "-", "--key-field", "0", "--shards", "4", "--n", "64",
        ]))
        .unwrap();
        match cmd {
            Command::Watch {
                key_field, shards, ..
            } => {
                assert_eq!(key_field, Some(0));
                assert_eq!(shards, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Flag hardening: --shards 0 and out-of-range --key-field are
        // rejected at parse time, --shards > 1 requires --key-field.
        let err = parse_args(&strings(&["watch", "-", "--shards", "0"])).unwrap_err();
        assert!(err.contains("--shards must be positive"), "{err}");
        let err = parse_args(&strings(&["watch", "-", "--key-field", "2"])).unwrap_err();
        assert!(err.contains("--key-field must be 0 or 1"), "{err}");
        let err = parse_args(&strings(&["watch", "-", "--shards", "2"])).unwrap_err();
        assert!(err.contains("--shards needs --key-field"), "{err}");
        // --fleet rides on keyed watch only.
        let err = parse_args(&strings(&["watch", "-", "--fleet", "--n", "64"])).unwrap_err();
        assert!(err.contains("--fleet needs --key-field"), "{err}");
        let cmd = parse_args(&strings(&[
            "watch", "-", "--key-field", "0", "--fleet", "--n", "64",
        ]))
        .unwrap();
        match cmd {
            Command::Watch { fleet, .. } => assert!(fleet),
            other => panic!("unexpected {other:?}"),
        }
        // Documented in --help.
        let help = usage();
        assert!(help.contains("--key-field") && help.contains("--shards"), "{help}");
        assert!(help.contains("--fleet") && help.contains("FLEET"), "{help}");
    }

    fn keyed_opts(shards: usize, json: bool) -> WatchOptions {
        WatchOptions {
            k: 2,
            eps: 0.25,
            n: 64,
            seed: 7,
            every: 1_000,
            sliding: false,
            runs: strings(&["l2", "uniformity"]),
            json,
            key_field: Some(0),
            shards,
            fleet: false,
        }
    }

    /// Three interleaved tenant streams as `key value` lines.
    fn keyed_text(records: usize) -> String {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let p = khist_dist::generators::staircase(64, 2).unwrap();
        let keys = ["api", "web", "batch"];
        p.sample_many(records, &mut rng)
            .iter()
            .enumerate()
            .map(|(i, v)| format!("{} {v}", keys[i % keys.len()]))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn keyed_watch_demultiplexes_streams_and_shards_are_invisible() {
        let text = keyed_text(7_500); // 2 500 records per stream
        let run = |shards: usize| {
            let mut out = Vec::new();
            let summary =
                run_watch(text.as_bytes(), &mut out, &keyed_opts(shards, true)).unwrap();
            assert!(summary.is_empty(), "JSON mode emits pure JSONL");
            String::from_utf8(out).unwrap()
        };
        let single = run(1);
        let sharded = run(3);
        // Every line is a stream-tagged WindowReport; per-stream sequences
        // are in window order and bit-identical across shard counts (the
        // global interleaving may differ — chunk boundaries scale with the
        // shard count — but no stream's reports may).
        let parse = |text: &str| -> Vec<WindowReport> {
            text.lines()
                .map(|l| WindowReport::from_json(l).unwrap_or_else(|e| panic!("{e}: {l}")))
                .collect()
        };
        let (a, b) = (parse(&single), parse(&sharded));
        // 2 windows + 1 partial tail per stream.
        assert_eq!(a.len(), 9);
        assert_eq!(b.len(), 9);
        for key in ["api", "web", "batch"] {
            let of = |rs: &[WindowReport]| -> Vec<WindowReport> {
                rs.iter()
                    .filter(|w| w.stream.as_deref() == Some(key))
                    .cloned()
                    .collect()
            };
            let windows = of(&a);
            assert_eq!(windows, of(&b), "stream {key} must not change with shards");
            assert_eq!(windows.len(), 3, "stream {key}");
            assert!(windows[0].complete && windows[1].complete && !windows[2].complete);
            assert!(
                windows.windows(2).all(|w| w[0].window < w[1].window),
                "stream {key} reports in window order"
            );
            assert_eq!(windows[2].seen, 500, "flushed tail of stream {key}");
        }
        // Human rendering tags the stream too.
        let mut out = Vec::new();
        let summary = run_watch(text.as_bytes(), &mut out, &keyed_opts(2, false)).unwrap();
        let rendered = String::from_utf8(out).unwrap();
        assert!(rendered.contains("[api] window 0"), "{rendered}");
        assert!(summary.contains("3 streams"), "{summary}");
        assert!(summary.contains("2 shards"), "{summary}");
    }

    #[test]
    fn keyed_watch_fleet_interleaves_rollup_lines() {
        let text = keyed_text(7_500); // 2 500 records per stream
        let mut opts = keyed_opts(2, true);
        opts.fleet = true;
        let mut out = Vec::new();
        run_watch(text.as_bytes(), &mut out, &opts).unwrap();
        let rendered = String::from_utf8(out).unwrap();
        let (fleet_lines, stream_lines): (Vec<&str>, Vec<&str>) = rendered
            .lines()
            .partition(|l| FleetReport::is_fleet_line(l));
        // The per-stream feed is exactly what --fleet-less watch emits
        // (compared minus wall time, the one field that varies per run).
        let mut plain = Vec::new();
        run_watch(text.as_bytes(), &mut plain, &keyed_opts(2, true)).unwrap();
        let skeleton = |lines: &[&str]| -> Vec<(Option<String>, u64, u64, bool, bool)> {
            lines
                .iter()
                .map(|l| {
                    let w = WindowReport::from_json(l).unwrap_or_else(|e| panic!("{e}: {l}"));
                    (w.stream.clone(), w.window, w.seen, w.complete, w.all_quiet())
                })
                .collect()
        };
        let plain = String::from_utf8(plain).unwrap();
        assert_eq!(
            skeleton(&stream_lines),
            skeleton(&plain.lines().collect::<Vec<_>>()),
            "--fleet must not perturb the per-stream lines"
        );
        // Rollup lines parse, grow monotonically, and the closing one
        // covers the whole stream (tails included).
        assert!(!fleet_lines.is_empty());
        let rollups: Vec<FleetReport> = fleet_lines
            .iter()
            .map(|l| FleetReport::from_json(l).unwrap_or_else(|e| panic!("{e}: {l}")))
            .collect();
        for pair in rollups.windows(2) {
            assert!(pair[0].records_seen <= pair[1].records_seen);
        }
        let last = rollups.last().unwrap();
        assert_eq!(last.streams, 3);
        assert_eq!(last.records_seen, 7_500);
        assert_eq!(last.windows_partial, 3, "one flushed tail per stream");
        // Human mode renders the rollup as a prefixed summary line.
        let mut opts = keyed_opts(1, false);
        opts.fleet = true;
        let mut out = Vec::new();
        run_watch(text.as_bytes(), &mut out, &opts).unwrap();
        let rendered = String::from_utf8(out).unwrap();
        assert!(rendered.contains("fleet: "), "{rendered}");
        // Un-keyed --fleet is rejected even when the options are built
        // programmatically (parse_args already rejects the flag combo).
        let mut opts = keyed_opts(1, false);
        opts.key_field = None;
        opts.fleet = true;
        let mut out = Vec::new();
        let err = run_watch("1\n2\n".as_bytes(), &mut out, &opts).unwrap_err();
        assert!(err.contains("--fleet needs --key-field"), "{err}");
    }

    #[test]
    fn keyed_watch_rejects_unkeyed_input_with_line_numbers() {
        let opts = keyed_opts(1, false);
        let mut out = Vec::new();
        let err = run_watch("api 3\n17\n".as_bytes(), &mut out, &opts).unwrap_err();
        assert!(
            err.contains("line 2") && err.contains("un-keyed"),
            "unhelpful error: {err}"
        );
        let mut out = Vec::new();
        let err = run_watch("api 3 9\n".as_bytes(), &mut out, &opts).unwrap_err();
        assert!(err.contains("line 1") && err.contains("exactly two"), "{err}");
        let mut out = Vec::new();
        let err = run_watch("api foo\n".as_bytes(), &mut out, &opts).unwrap_err();
        assert!(err.contains("line 1") && err.contains("foo"), "{err}");
        // --key-field 1 swaps the roles: "value key" lines.
        let mut opts = keyed_opts(1, false);
        opts.key_field = Some(1);
        let mut out = Vec::new();
        assert!(run_watch("3 api\n".as_bytes(), &mut out, &opts).is_ok());

        // Keyed watch cannot infer a domain: dispatch demands --n.
        let err = dispatch(Command::Watch {
            path: "-".into(),
            k: 2,
            eps: 0.3,
            n: 0,
            seed: 0,
            every: 100,
            window: "tumbling".into(),
            runs: strings(&["uniformity"]),
            json: false,
            key_field: Some(0),
            shards: 2,
            fleet: false,
        })
        .unwrap_err();
        assert!(err.contains("--n") && err.contains("key"), "{err}");
    }

    #[test]
    fn keyed_watch_emits_partial_tails_in_debut_order() {
        // No stream ever completes a window (every = 1_000, 300 records
        // each), so everything the command emits is flushed tails. Those
        // must come out in *debut* order — "web" connected first — not
        // the lexicographic order Engine::flush sorts by (which would put
        // "api" first), and regardless of the shard count.
        let mut text = String::new();
        for i in 0..300 {
            text.push_str(&format!("web {}\napi {}\n", (i * 7) % 64, (i * 11) % 64));
        }
        for shards in [1usize, 2] {
            let mut out = Vec::new();
            run_watch(text.as_bytes(), &mut out, &keyed_opts(shards, true)).unwrap();
            let rendered = String::from_utf8(out).unwrap();
            let tails: Vec<WindowReport> = rendered
                .lines()
                .map(|l| WindowReport::from_json(l).unwrap_or_else(|e| panic!("{e}: {l}")))
                .collect();
            let order: Vec<&str> = tails.iter().filter_map(|w| w.stream.as_deref()).collect();
            assert_eq!(order, ["web", "api"], "debut order @ {shards} shards");
            assert!(tails.iter().all(|w| !w.complete && w.seen == 300));
        }
    }

    #[test]
    fn parse_args_seed_flag() {
        let cmd = parse_args(&strings(&["learn", "d.txt", "--seed", "12345"])).unwrap();
        match cmd {
            Command::Learn { seed, .. } => assert_eq!(seed, 12345),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&strings(&["learn", "d.txt", "--seed"])).is_err());
        assert!(parse_args(&strings(&["learn", "d.txt", "--seed", "-1"])).is_err());
    }

    #[test]
    fn parse_args_errors() {
        assert!(parse_args(&strings(&["learn"])).is_err());
        assert!(parse_args(&strings(&["learn", "a", "b"])).is_err());
        assert!(parse_args(&strings(&["learn", "a", "--k"])).is_err());
        assert!(parse_args(&strings(&["learn", "a", "--k", "x"])).is_err());
        assert!(parse_args(&strings(&["learn", "a", "--bogus", "1"])).is_err());
        assert!(parse_args(&strings(&["test", "a", "--norm", "l3"])).is_err());
        assert!(parse_args(&strings(&["frobnicate", "a"])).is_err());
    }

    #[test]
    fn parse_args_empty_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&strings(&["help"])).unwrap(), Command::Help);
    }

    #[test]
    fn parse_samples_handles_comments_and_blanks() {
        let text = "# header\n3\n\n 7 \n0\n";
        assert_eq!(parse_samples_text(text).unwrap(), vec![3, 7, 0]);
    }

    #[test]
    fn parse_samples_rejects_garbage() {
        assert!(parse_samples_text("1\nfoo\n").is_err());
        assert!(parse_samples_text("-3\n").is_err());
        assert!(parse_samples_text("").is_err());
        assert!(parse_samples_text("# only comments\n").is_err());
    }

    #[test]
    fn infer_domain_rules() {
        assert_eq!(infer_domain(&[0, 5, 2], 0).unwrap(), 6);
        assert_eq!(infer_domain(&[0, 5, 2], 10).unwrap(), 10);
        assert!(infer_domain(&[0, 5, 2], 5).is_err());
    }

    #[test]
    fn split_for_learner_round_robins() {
        let samples: Vec<usize> = (0..10).collect();
        let (main, sets) = split_for_learner(&samples, 2);
        assert_eq!(main.total(), 4); // indices 0,3,6,9
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].total(), 3);
        assert_eq!(sets[1].total(), 3);
        let total: u64 = main.total() + sets.iter().map(|s| s.total()).sum::<u64>();
        assert_eq!(total, 10);
    }

    #[test]
    fn end_to_end_learn_from_text() {
        // Synthesize a 2-histogram data file and learn it back.
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let p = khist_dist::generators::two_level(64, 0.25, 0.75).unwrap();
        let samples = p.sample_many(30_000, &mut rng);
        let text: String = samples
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = parse_samples_text(&text).unwrap();
        let report = run_learn(&parsed, 2, 0.15, 64).unwrap();
        assert!(report.contains("2-piece"), "report: {report}");
        // the heavy/light boundary at 16 should appear within a few slots
        let found = (14..=18)
            .any(|b| report.contains(&format!("{b}]")) || report.contains(&format!("{b},")));
        assert!(found, "no boundary near 16 in: {report}");
    }

    #[test]
    fn end_to_end_test_verdicts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let flat = khist_dist::generators::staircase(64, 4).unwrap();
        let samples = flat.sample_many(100_000, &mut rng);
        let verdict = run_test(&samples, 4, 0.25, 64, "l2").unwrap();
        assert!(verdict.contains("Accept"), "{verdict}");

        let spiky = khist_dist::generators::spike_comb(64, 8).unwrap();
        let samples = spiky.sample_many(100_000, &mut rng);
        let verdict = run_test(&samples, 2, 0.2, 64, "l2").unwrap();
        assert!(verdict.contains("Reject"), "{verdict}");
    }

    #[test]
    fn dispatch_learn_streams_record_file() {
        // The full CLI path: record file → RecordFileOracle → analysis API.
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let p = khist_dist::generators::two_level(64, 0.25, 0.75).unwrap();
        let path = temp_file(&p.sample_many(30_000, &mut rng), "learn");
        let learn = |json: bool| Command::Learn {
            path: path.clone(),
            k: 2,
            eps: 0.15,
            n: 64,
            seed: 7,
            json,
        };
        let report = dispatch(learn(false)).unwrap();
        assert!(report.contains("2-piece"), "report: {report}");
        assert!(report.contains("[0, 64)"), "report: {report}");
        // Reproducible: the same seed yields the same report.
        let again = dispatch(learn(false)).unwrap();
        assert_eq!(report, again);
        // --json emits the structured report and round-trips.
        let json = dispatch(learn(true)).unwrap();
        let parsed = Report::from_json(json.trim()).unwrap();
        assert_eq!(parsed.analysis, AnalysisKind::Learn);
        assert_eq!(parsed.seed, 7);
        assert!(parsed.histogram.is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dispatch_test_streams_record_file() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(15);
        let flat = khist_dist::generators::staircase(64, 4).unwrap();
        let path = temp_file(&flat.sample_many(100_000, &mut rng), "test");
        let verdict = dispatch(Command::Test {
            path: path.clone(),
            k: 4,
            eps: 0.25,
            n: 64,
            norm: "l2".into(),
            seed: 3,
            json: false,
        })
        .unwrap();
        assert!(verdict.contains("Accept"), "{verdict}");
        let json = dispatch(Command::Test {
            path: path.clone(),
            k: 4,
            eps: 0.25,
            n: 64,
            norm: "l2".into(),
            seed: 3,
            json: true,
        })
        .unwrap();
        let parsed = Report::from_json(json.trim()).unwrap();
        assert_eq!(parsed.analysis, AnalysisKind::TestL2);
        assert!(parsed.accepted(), "{json}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dispatch_analyze_runs_batch_from_one_pass() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(16);
        let p = khist_dist::generators::staircase(64, 4).unwrap();
        let path = temp_file(&p.sample_many(60_000, &mut rng), "analyze");
        let human = dispatch(Command::Analyze {
            path: path.clone(),
            k: 4,
            eps: 0.25,
            n: 64,
            seed: 5,
            json: false,
            runs: strings(&["learn", "l2", "uniformity", "monotone"]),
        })
        .unwrap();
        assert!(human.contains("4 analyses"), "{human}");
        assert!(human.contains("ledger:"), "{human}");
        assert!(human.contains("draw"), "{human}");

        let json = dispatch(Command::Analyze {
            path: path.clone(),
            k: 4,
            eps: 0.25,
            n: 64,
            seed: 5,
            json: true,
            runs: strings(&["learn", "l2", "uniformity"]),
        })
        .unwrap();
        let value = serde::json::from_str(json.trim()).expect("valid JSON");
        let reports = value.as_seq().expect("JSON array");
        assert_eq!(reports.len(), 3);
        let kinds: Vec<&str> = reports
            .iter()
            .map(|r| r.get("analysis").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(kinds, ["learn", "test_l2", "uniformity"]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn analyze_on_oracle_is_one_pass() {
        // The shared-plan guarantee at the app layer: a whole batch costs
        // the streaming backend exactly one pass after open's scan.
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let p = khist_dist::generators::staircase(64, 4).unwrap();
        let path = temp_file(&p.sample_many(40_000, &mut rng), "onepass");
        let mut oracle = RecordFileOracle::open(&path, 64, 9).unwrap();
        let available = oracle.records() as usize;
        let runs = strings(&["learn", "l2", "uniformity"]);
        let (reports, ledger) =
            run_analyze_with(&mut oracle, 4, 0.25, &runs, available, 9).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(oracle.passes(), 1, "batch must cost exactly one pass");
        assert_eq!(ledger.iter().filter(|e| e.label == "draw").count(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dispatch_learn_rejects_out_of_domain_record() {
        // An explicit --n smaller than a record must produce a clear error
        // (not a panic deep inside sample-set construction).
        let path = temp_file(&[1, 2, 99], "baddomain");
        let err = dispatch(Command::Learn {
            path: path.clone(),
            k: 2,
            eps: 0.2,
            n: 50,
            seed: 0,
            json: false,
        })
        .unwrap_err();
        assert!(
            err.contains("record 99") && err.contains("[0, 50)"),
            "unhelpful error: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summarize_reports_entropy() {
        let samples: Vec<usize> = (0..64).flat_map(|v| std::iter::repeat_n(v, 10)).collect();
        let report = run_summarize(&samples, 0).unwrap();
        assert!(report.contains("distinct values: 64"));
        assert!(report.contains("entropy"));
    }

    #[test]
    fn budget_respects_available_data() {
        let b = budget_for_data(256, 4, 0.1, 5_000).unwrap();
        assert!(
            b.total_samples().unwrap() <= 5_000 || b.r == 3,
            "budget {} exceeds data 5000 with r = {}",
            b.total_samples().unwrap(),
            b.r
        );
    }

    #[test]
    fn dispatch_help() {
        let text = dispatch(Command::Help).unwrap();
        assert!(text.contains("usage"));
        assert!(text.contains("--seed"));
        assert!(text.contains("analyze"));
        assert!(text.contains("--json"));
    }

    #[test]
    fn dispatch_missing_file() {
        let err = dispatch(Command::Summarize {
            path: "/nonexistent/x.txt".into(),
            n: 0,
        })
        .unwrap_err();
        assert!(err.contains("/nonexistent/x.txt"));

        let err = dispatch(Command::Learn {
            path: "/nonexistent/x.txt".into(),
            k: 2,
            eps: 0.2,
            n: 0,
            seed: 0,
            json: false,
        })
        .unwrap_err();
        assert!(err.contains("/nonexistent/x.txt"));
    }

    #[test]
    fn random_learner_cli_smoke() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let samples: Vec<usize> = (0..5000).map(|_| rng.random_range(0..32)).collect();
        let report = run_learn(&samples, 3, 0.2, 0).unwrap();
        assert!(report.contains("histogram over [0, 32)"));
    }
}
