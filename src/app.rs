//! Support logic for the `khist` command-line tool.
//!
//! The binary in `src/bin/khist.rs` is a thin shell around these functions
//! so the argument handling, file parsing and report formatting are unit
//! tested like any other library code.
//!
//! Input format: one non-negative integer per line (blank lines and `#`
//! comments ignored) — the raw samples/records of a data set, exactly the
//! access model of the paper. The domain size is `max + 1` unless
//! overridden with `--n`.
//!
//! `learn` and `test` are generic over [`SampleOracle`]: the binary streams
//! record files through a [`RecordFileOracle`] (fixed-size reservoirs, so a
//! multi-million-line file never gets materialized as a `Vec`), while the
//! in-memory helpers ([`run_learn`] / [`run_test`]) feed pre-split data
//! through a [`ReplayOracle`]. Randomness comes from `--seed` (default 0),
//! so every run is reproducible.

use khist_core::compress::compress_to_k;
use khist_core::greedy::{learn, GreedyParams};
use khist_core::tester::{test_l1_from_sets, test_l2_from_sets};
use khist_dist::DistError;
use khist_oracle::{
    empirical_distribution, LearnerBudget, RecordFileOracle, ReplayOracle, SampleOracle, SampleSet,
};

/// Parsed command-line request.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Learn a `k`-histogram from the samples in a file.
    Learn {
        /// Input path.
        path: String,
        /// Number of pieces.
        k: usize,
        /// Accuracy parameter.
        eps: f64,
        /// Domain override (`0` = infer from data).
        n: usize,
        /// RNG seed for the sampling oracle.
        seed: u64,
    },
    /// Test whether the file's distribution is a tiling `k`-histogram.
    Test {
        /// Input path.
        path: String,
        /// Number of pieces.
        k: usize,
        /// Accuracy parameter.
        eps: f64,
        /// Domain override (`0` = infer from data).
        n: usize,
        /// `"l1"` or `"l2"`.
        norm: String,
        /// RNG seed for the sampling oracle.
        seed: u64,
    },
    /// Print summary statistics of the file's empirical distribution.
    Summarize {
        /// Input path.
        path: String,
        /// Domain override (`0` = infer from data).
        n: usize,
    },
    /// Print usage.
    Help,
}

/// Parses CLI arguments (past the binary name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    let mut path: Option<String> = None;
    let mut k = 8usize;
    let mut eps = 0.1f64;
    let mut n = 0usize;
    let mut norm = "l2".to_string();
    let mut seed = 0u64;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--k" => k = next_parsed(&mut it, "--k")?,
            "--eps" => eps = next_parsed(&mut it, "--eps")?,
            "--n" => n = next_parsed(&mut it, "--n")?,
            "--seed" => seed = next_parsed(&mut it, "--seed")?,
            "--norm" => {
                norm = it.next().ok_or("--norm requires a value")?.clone();
                if norm != "l1" && norm != "l2" {
                    return Err(format!("--norm must be l1 or l2, got {norm}"));
                }
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => {
                if path.replace(other.to_string()).is_some() {
                    return Err("multiple input paths given".into());
                }
            }
        }
    }
    let need_path = |p: Option<String>| p.ok_or_else(|| "missing input path".to_string());
    match sub {
        "learn" => Ok(Command::Learn {
            path: need_path(path)?,
            k,
            eps,
            n,
            seed,
        }),
        "test" => Ok(Command::Test {
            path: need_path(path)?,
            k,
            eps,
            n,
            norm,
            seed,
        }),
        "summarize" => Ok(Command::Summarize {
            path: need_path(path)?,
            n,
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown subcommand {other}")),
    }
}

fn next_parsed<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<T, String> {
    it.next()
        .ok_or_else(|| format!("{flag} requires a value"))?
        .parse()
        .map_err(|_| format!("invalid value for {flag}"))
}

/// Parses newline-delimited sample text (`#` comments, blank lines ok).
pub fn parse_samples_text(text: &str) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let value: usize = trimmed
            .parse()
            .map_err(|_| format!("line {}: not an integer: {trimmed}", lineno + 1))?;
        out.push(value);
    }
    if out.is_empty() {
        return Err("no samples in input".into());
    }
    Ok(out)
}

/// Infers the domain size: explicit override or `max + 1`.
pub fn infer_domain(samples: &[usize], override_n: usize) -> Result<usize, String> {
    let max = *samples.iter().max().expect("samples non-empty");
    if override_n == 0 {
        return Ok(max + 1);
    }
    if max >= override_n {
        return Err(format!(
            "sample {max} outside declared domain [0, {override_n})"
        ));
    }
    Ok(override_n)
}

/// Splits raw samples into the learner's main + `r` collision sets by
/// round-robin (keeps the sets independent when the input is i.i.d.).
pub fn split_for_learner(samples: &[usize], r: usize) -> (SampleSet, Vec<SampleSet>) {
    let lanes = r + 1;
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); lanes];
    for (t, &s) in samples.iter().enumerate() {
        buckets[t % lanes].push(s);
    }
    let main = SampleSet::from_samples(buckets[0].clone());
    let sets = buckets[1..]
        .iter()
        .map(|b| SampleSet::from_samples(b.clone()))
        .collect();
    (main, sets)
}

/// Runs `learn` against any [`SampleOracle`]: draws the budgeted main +
/// collision sets in one batch (a single pass for streaming backends) and
/// renders the learned histogram.
///
/// `available` is the number of records the backend can actually serve
/// (used to clamp the paper's budget).
pub fn run_learn_with<O: SampleOracle + ?Sized>(
    oracle: &mut O,
    k: usize,
    eps: f64,
    available: usize,
) -> Result<String, String> {
    let n = oracle.domain_size();
    // Budget bounded by the data actually available.
    let budget = budget_for_data(n, k, eps, available);
    let params = GreedyParams::fast(k, eps, budget);
    let out = learn(oracle, &params).map_err(fmt_err)?;
    let summary = compress_to_k(&out.tiling, k).map_err(fmt_err)?;
    let normalized = summary.normalized().map_err(fmt_err)?;
    let mut report = format!(
        "learned {}-piece histogram over [0, {n}) from {} samples\n",
        normalized.piece_count(),
        out.stats.samples_used,
    );
    for (iv, v) in normalized.pieces() {
        report.push_str(&format!(
            "  [{:>6}, {:>6}]  density {:.6e}  mass {:.4}\n",
            iv.lo(),
            iv.hi(),
            v,
            v * iv.len() as f64
        ));
    }
    Ok(report)
}

/// Runs `learn` on in-memory samples: splits *all* of them round-robin
/// into one equal lane per budgeted set (the seed behaviour — unlike the
/// streaming path, which reservoir-subsamples down to the budgeted sizes)
/// and replays the split through the generic path.
pub fn run_learn(
    samples: &[usize],
    k: usize,
    eps: f64,
    n_override: usize,
) -> Result<String, String> {
    let n = infer_domain(samples, n_override)?;
    // run_learn_with recomputes this same (deterministic) budget; it fixes
    // the lane count the replayed split must provide.
    let budget = budget_for_data(n, k, eps, samples.len());
    let (main, sets) = split_for_learner(samples, budget.r);
    let mut recorded = vec![main];
    recorded.extend(sets);
    let mut oracle = ReplayOracle::from_sets(n, recorded);
    run_learn_with(&mut oracle, k, eps, samples.len())
}

/// The tester's split of `available` records: `r` equal sets of `m`.
/// Single source of truth — [`run_test`]'s replayed chunks must match the
/// sets [`run_test_with`] requests.
fn tester_split(available: usize) -> Result<(usize, usize), String> {
    let r = 7usize.min(available / 2).max(1);
    let m = available / r;
    if m < 2 {
        return Err("not enough samples to test".into());
    }
    Ok((r, m))
}

/// Runs `test` against any [`SampleOracle`]: draws `r` equal sets in one
/// batched call and renders a verdict line.
pub fn run_test_with<O: SampleOracle + ?Sized>(
    oracle: &mut O,
    k: usize,
    eps: f64,
    norm: &str,
    available: usize,
) -> Result<String, String> {
    let n = oracle.domain_size();
    let (r, m) = tester_split(available)?;
    let sets = oracle.draw_sets(r, m);
    // Streaming/replay backends may serve sets of a different (equal) size;
    // the flatness thresholds scale with the actual per-set count.
    let m = sets.first().map(|s| s.total() as usize).unwrap_or(0);
    let report = match norm {
        "l1" => test_l1_from_sets(n, k, eps, m, &sets).map_err(fmt_err)?,
        _ => test_l2_from_sets(n, k, eps, m, &sets).map_err(fmt_err)?,
    };
    Ok(format!(
        "{norm} tiling {k}-histogram test over [0, {n}): {report}\n"
    ))
}

/// Runs `test` on in-memory samples via a [`ReplayOracle`] of equal chunks.
pub fn run_test(
    samples: &[usize],
    k: usize,
    eps: f64,
    n_override: usize,
    norm: &str,
) -> Result<String, String> {
    let n = infer_domain(samples, n_override)?;
    let (r, m) = tester_split(samples.len())?;
    let chunks: Vec<Vec<usize>> = (0..r).map(|j| samples[j * m..(j + 1) * m].to_vec()).collect();
    let mut oracle = ReplayOracle::from_raw(n, chunks);
    run_test_with(&mut oracle, k, eps, norm, samples.len())
}

/// Runs `summarize` and renders basic statistics.
pub fn run_summarize(samples: &[usize], n_override: usize) -> Result<String, String> {
    let n = infer_domain(samples, n_override)?;
    let set = SampleSet::from_samples(samples.to_vec());
    let emp = empirical_distribution(&set, n).map_err(fmt_err)?;
    Ok(format!(
        "samples: {}\ndomain: [0, {n})\ndistinct values: {}\nentropy: {:.4} nats (max {:.4})\ncollision rate ‖p̂‖₂²: {:.6e} (uniform floor {:.6e})\n",
        set.total(),
        set.distinct(),
        emp.entropy(),
        (n as f64).ln(),
        emp.l2_norm_sq(),
        1.0 / n as f64
    ))
}

/// Usage text for `help`.
pub fn usage() -> &'static str {
    "khist — k-histogram learning and testing from samples (PODS 2012)\n\
     \n\
     usage:\n\
     \x20 khist learn     <records.txt> [--k K] [--eps E] [--n N] [--seed S]\n\
     \x20 khist test      <records.txt> [--k K] [--eps E] [--n N] [--norm l1|l2] [--seed S]\n\
     \x20 khist summarize <records.txt> [--n N]\n\
     \n\
     input: one integer record per line; '#' comments and blank lines ignored.\n\
     The domain defaults to [0, max_record]; override with --n.\n\
     learn/test stream the file through fixed-size reservoirs (constant\n\
     memory in the file length); --seed (default 0) fixes the subsample.\n"
}

/// Clamps the paper's budget to the data actually available in the file.
fn budget_for_data(n: usize, k: usize, eps: f64, available: usize) -> LearnerBudget {
    let mut budget = LearnerBudget::calibrated(n, k, eps, 1.0);
    if budget.total_samples() > available {
        let scale = available as f64 / budget.total_samples() as f64;
        budget = LearnerBudget::calibrated(n, k, eps, scale.clamp(1e-9, 1.0));
        // The calibrated floors may still exceed tiny files; final clamp.
        while budget.total_samples() > available && budget.r > 3 {
            budget.r -= 2;
        }
        // Data is scarcer than the paper's budget, so none of it should go
        // unused: the main sample absorbs whatever the collision sets leave.
        let fixed = budget.r * budget.m;
        if fixed < available {
            budget.ell = (available - fixed).max(16);
        }
    }
    budget
}

fn fmt_err(e: DistError) -> String {
    e.to_string()
}

/// Entry point shared by the binary: dispatches a parsed command.
///
/// `learn` and `test` stream the record file through a
/// [`RecordFileOracle`] — the file is scanned once for validation (domain
/// violations against `--n` fail here with the offending line) and then
/// streamed per draw, never materialized.
pub fn dispatch(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(usage().to_string()),
        Command::Learn {
            path,
            k,
            eps,
            n,
            seed,
        } => {
            let mut oracle = RecordFileOracle::open(&path, n, seed).map_err(fmt_err)?;
            let available = oracle.records() as usize;
            run_learn_with(&mut oracle, k, eps, available)
        }
        Command::Test {
            path,
            k,
            eps,
            n,
            norm,
            seed,
        } => {
            let mut oracle = RecordFileOracle::open(&path, n, seed).map_err(fmt_err)?;
            let available = oracle.records() as usize;
            run_test_with(&mut oracle, k, eps, &norm, available)
        }
        Command::Summarize { path, n } => {
            let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            run_summarize(&parse_samples_text(&text)?, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use std::io::Write;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    /// Writes samples to a unique temp record file.
    fn temp_file(samples: &[usize], tag: &str) -> String {
        let path = std::env::temp_dir().join(format!(
            "khist-app-{tag}-{}.txt",
            std::process::id()
        ));
        let mut f = std::fs::File::create(&path).expect("temp file writable");
        for &s in samples {
            writeln!(f, "{s}").unwrap();
        }
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn parse_args_learn_defaults() {
        let cmd = parse_args(&strings(&["learn", "data.txt"])).unwrap();
        assert_eq!(
            cmd,
            Command::Learn {
                path: "data.txt".into(),
                k: 8,
                eps: 0.1,
                n: 0,
                seed: 0
            }
        );
    }

    #[test]
    fn parse_args_flags() {
        let cmd = parse_args(&strings(&[
            "test", "d.txt", "--k", "4", "--eps", "0.3", "--norm", "l1", "--seed", "9",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Test {
                path: "d.txt".into(),
                k: 4,
                eps: 0.3,
                n: 0,
                norm: "l1".into(),
                seed: 9
            }
        );
    }

    #[test]
    fn parse_args_seed_flag() {
        let cmd = parse_args(&strings(&["learn", "d.txt", "--seed", "12345"])).unwrap();
        match cmd {
            Command::Learn { seed, .. } => assert_eq!(seed, 12345),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&strings(&["learn", "d.txt", "--seed"])).is_err());
        assert!(parse_args(&strings(&["learn", "d.txt", "--seed", "-1"])).is_err());
    }

    #[test]
    fn parse_args_errors() {
        assert!(parse_args(&strings(&["learn"])).is_err());
        assert!(parse_args(&strings(&["learn", "a", "b"])).is_err());
        assert!(parse_args(&strings(&["learn", "a", "--k"])).is_err());
        assert!(parse_args(&strings(&["learn", "a", "--k", "x"])).is_err());
        assert!(parse_args(&strings(&["learn", "a", "--bogus", "1"])).is_err());
        assert!(parse_args(&strings(&["test", "a", "--norm", "l3"])).is_err());
        assert!(parse_args(&strings(&["frobnicate", "a"])).is_err());
    }

    #[test]
    fn parse_args_empty_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&strings(&["help"])).unwrap(), Command::Help);
    }

    #[test]
    fn parse_samples_handles_comments_and_blanks() {
        let text = "# header\n3\n\n 7 \n0\n";
        assert_eq!(parse_samples_text(text).unwrap(), vec![3, 7, 0]);
    }

    #[test]
    fn parse_samples_rejects_garbage() {
        assert!(parse_samples_text("1\nfoo\n").is_err());
        assert!(parse_samples_text("-3\n").is_err());
        assert!(parse_samples_text("").is_err());
        assert!(parse_samples_text("# only comments\n").is_err());
    }

    #[test]
    fn infer_domain_rules() {
        assert_eq!(infer_domain(&[0, 5, 2], 0).unwrap(), 6);
        assert_eq!(infer_domain(&[0, 5, 2], 10).unwrap(), 10);
        assert!(infer_domain(&[0, 5, 2], 5).is_err());
    }

    #[test]
    fn split_for_learner_round_robins() {
        let samples: Vec<usize> = (0..10).collect();
        let (main, sets) = split_for_learner(&samples, 2);
        assert_eq!(main.total(), 4); // indices 0,3,6,9
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].total(), 3);
        assert_eq!(sets[1].total(), 3);
        let total: u64 = main.total() + sets.iter().map(|s| s.total()).sum::<u64>();
        assert_eq!(total, 10);
    }

    #[test]
    fn end_to_end_learn_from_text() {
        // Synthesize a 2-histogram data file and learn it back.
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let p = khist_dist::generators::two_level(64, 0.25, 0.75).unwrap();
        let samples = p.sample_many(30_000, &mut rng);
        let text: String = samples
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = parse_samples_text(&text).unwrap();
        let report = run_learn(&parsed, 2, 0.15, 64).unwrap();
        assert!(report.contains("2-piece"), "report: {report}");
        // the heavy/light boundary at 16 should appear within a few slots
        let found = (14..=18)
            .any(|b| report.contains(&format!("{b}]")) || report.contains(&format!("{b},")));
        assert!(found, "no boundary near 16 in: {report}");
    }

    #[test]
    fn end_to_end_test_verdicts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let flat = khist_dist::generators::staircase(64, 4).unwrap();
        let samples = flat.sample_many(100_000, &mut rng);
        let verdict = run_test(&samples, 4, 0.25, 64, "l2").unwrap();
        assert!(verdict.contains("Accept"), "{verdict}");

        let spiky = khist_dist::generators::spike_comb(64, 8).unwrap();
        let samples = spiky.sample_many(100_000, &mut rng);
        let verdict = run_test(&samples, 2, 0.2, 64, "l2").unwrap();
        assert!(verdict.contains("Reject"), "{verdict}");
    }

    #[test]
    fn dispatch_learn_streams_record_file() {
        // The full CLI path: record file → RecordFileOracle → generic learn.
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let p = khist_dist::generators::two_level(64, 0.25, 0.75).unwrap();
        let path = temp_file(&p.sample_many(30_000, &mut rng), "learn");
        let report = dispatch(Command::Learn {
            path: path.clone(),
            k: 2,
            eps: 0.15,
            n: 64,
            seed: 7,
        })
        .unwrap();
        assert!(report.contains("2-piece"), "report: {report}");
        assert!(report.contains("[0, 64)"), "report: {report}");
        // Reproducible: the same seed yields the same report.
        let again = dispatch(Command::Learn {
            path: path.clone(),
            k: 2,
            eps: 0.15,
            n: 64,
            seed: 7,
        })
        .unwrap();
        assert_eq!(report, again);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dispatch_test_streams_record_file() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(15);
        let flat = khist_dist::generators::staircase(64, 4).unwrap();
        let path = temp_file(&flat.sample_many(100_000, &mut rng), "test");
        let verdict = dispatch(Command::Test {
            path: path.clone(),
            k: 4,
            eps: 0.25,
            n: 64,
            norm: "l2".into(),
            seed: 3,
        })
        .unwrap();
        assert!(verdict.contains("Accept"), "{verdict}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dispatch_learn_rejects_out_of_domain_record() {
        // Satellite: an explicit --n smaller than a record must produce a
        // clear error (not a panic deep inside sample-set construction).
        let path = temp_file(&[1, 2, 99], "baddomain");
        let err = dispatch(Command::Learn {
            path: path.clone(),
            k: 2,
            eps: 0.2,
            n: 50,
            seed: 0,
        })
        .unwrap_err();
        assert!(
            err.contains("record 99") && err.contains("[0, 50)"),
            "unhelpful error: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summarize_reports_entropy() {
        let samples: Vec<usize> = (0..64).flat_map(|v| std::iter::repeat_n(v, 10)).collect();
        let report = run_summarize(&samples, 0).unwrap();
        assert!(report.contains("distinct values: 64"));
        assert!(report.contains("entropy"));
    }

    #[test]
    fn budget_respects_available_data() {
        let b = budget_for_data(256, 4, 0.1, 5_000);
        assert!(
            b.total_samples() <= 5_000 || b.r == 3,
            "budget {} exceeds data 5000 with r = {}",
            b.total_samples(),
            b.r
        );
    }

    #[test]
    fn dispatch_help() {
        let text = dispatch(Command::Help).unwrap();
        assert!(text.contains("usage"));
        assert!(text.contains("--seed"));
    }

    #[test]
    fn dispatch_missing_file() {
        let err = dispatch(Command::Summarize {
            path: "/nonexistent/x.txt".into(),
            n: 0,
        })
        .unwrap_err();
        assert!(err.contains("/nonexistent/x.txt"));

        let err = dispatch(Command::Learn {
            path: "/nonexistent/x.txt".into(),
            k: 2,
            eps: 0.2,
            n: 0,
            seed: 0,
        })
        .unwrap_err();
        assert!(err.contains("/nonexistent/x.txt"));
    }

    #[test]
    fn random_learner_cli_smoke() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let samples: Vec<usize> = (0..5000).map(|_| rng.random_range(0..32)).collect();
        let report = run_learn(&samples, 3, 0.2, 0).unwrap();
        assert!(report.contains("histogram over [0, 32)"));
    }
}
