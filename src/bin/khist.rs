//! `khist` — command-line k-histogram learning/testing from record files.
//!
//! ```text
//! khist learn     records.txt --k 8 --eps 0.1 --seed 7 [--json]
//! khist test      records.txt --k 8 --eps 0.2 --norm l1 [--json]
//! khist analyze   records.txt --k 8 --run learn,l2,uniformity [--json]
//! khist watch     -           --every 100000 --n 1024 [--window sliding] [--json]
//! khist serve     --n 1024 --socket /run/khist.sock --control /run/khist-ctl.sock
//! khist summarize records.txt
//! ```
//!
//! `learn`/`test`/`analyze` stream the file through a `RecordFileOracle`
//! (constant memory in the file length); `--seed` fixes the reservoir
//! subsample so runs are reproducible. `analyze` serves its whole batch
//! from ONE shared sample draw — a single pass over the file — and
//! `--json` emits the structured serde `Report`(s). `watch` is the
//! push-based dual: it ingests an unbounded stream (`-` = stdin) into a
//! windowed `Monitor` and emits a report — the analysis batch plus an
//! `ℓ₂` drift check against the previous window — every `--every`
//! records, in bounded memory. `serve` runs keyed watch as a long-lived
//! process: a single-threaded reactor multiplexes Unix-socket and stdin
//! producers into the sharded engine and serves `STATS` snapshot/ledger
//! queries on a control socket, with per-window JSONL on stdout. All
//! logic lives (and is tested) in [`khist::app`] and `khist_serve`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match khist::app::parse_args(&args).and_then(khist::app::dispatch) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", khist::app::usage());
            ExitCode::FAILURE
        }
    }
}
