//! `khist` — command-line k-histogram learning/testing from record files.
//!
//! ```text
//! khist learn     records.txt --k 8 --eps 0.1 --seed 7
//! khist test      records.txt --k 8 --eps 0.2 --norm l1
//! khist summarize records.txt
//! ```
//!
//! `learn`/`test` stream the file through a `RecordFileOracle` (constant
//! memory in the file length); `--seed` fixes the reservoir subsample so
//! runs are reproducible. All logic lives (and is tested) in
//! [`khist::app`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match khist::app::parse_args(&args).and_then(khist::app::dispatch) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", khist::app::usage());
            ExitCode::FAILURE
        }
    }
}
