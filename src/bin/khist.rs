//! `khist` — command-line k-histogram learning/testing from sample files.
//!
//! ```text
//! khist learn     samples.txt --k 8 --eps 0.1
//! khist test      samples.txt --k 8 --eps 0.2 --norm l1
//! khist summarize samples.txt
//! ```
//!
//! All logic lives (and is tested) in [`khist::app`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match khist::app::parse_args(&args).and_then(khist::app::dispatch) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", khist::app::usage());
            ExitCode::FAILURE
        }
    }
}
