//! # khist — sub-linear approximation and testing of k-histogram distributions
//!
//! A Rust implementation of
//! *Indyk, Levi, Rubinfeld: "Approximating and Testing k-Histogram
//! Distributions in Sub-linear Time", PODS 2012*, together with the exact
//! offline optima and classical database-histogram baselines the paper is
//! measured against.
//!
//! ## What this library does
//!
//! A distribution `p` over `[n]` is a **k-histogram** when its probability
//! mass function is piecewise constant with `k` pieces. Given only i.i.d.
//! samples from `p`, this library can
//!
//! 1. **Learn** a `k`-histogram whose squared `ℓ₂` error is within an
//!    additive `O(ε)` of the best possible ([`api::Learn`], Theorems 1–2),
//!    using `Õ((k/ε)² ln n)` samples — far fewer than the `Ω(n)` any
//!    pointwise method needs;
//! 2. **Test** whether `p` even is a `k`-histogram, or is `ε`-far from every
//!    one, in `ℓ₂` (`O(ε⁻⁴ ln² n)` samples) or `ℓ₁` (`Õ(ε⁻⁵ √(kn))`
//!    samples) — [`api::TestL2`] / [`api::TestL1`], Theorems 3–4 — plus the
//!    companion uniformity, identity, closeness and monotonicity testers;
//! 3. Reproduce the paper's `Ω(√(kn))` **lower bound** empirically
//!    (`khist::lower_bound`, Theorem 5).
//!
//! ## Crate map
//!
//! | module (re-export) | source crate | contents |
//! |---|---|---|
//! | [`api`] | `khist-core` | **the front door**: typed requests, pull `Session` / push `Monitor` / keyed multi-stream `Engine`, shared `SamplePlan`, serde `Report` |
//! | [`dist`] | `khist-dist` | distributions, intervals, histograms, distances, generators |
//! | [`oracle`] | `khist-oracle` | the pull `SampleOracle` seam + backends, the push `SampleSink`/`WindowedSink` ingest layer, sample multisets, collision estimators, budgets |
//! | [`stats`] | `khist-stats` | summaries, Wilson intervals, scaling fits |
//! | [`fleet`] | `khist-fleet` | mergeable fleet rollups: counters, drift quantile sketch, top-K drifting streams |
//! | [`baseline`] | `khist-baseline` | exact v-optimal DP, `ℓ₁` DP, equi-width/depth, MaxDiff, greedy-merge |
//! | [`greedy`], [`tester`], [`flatness`], [`mod@partition_search`], [`lower_bound`], [`cost`], [`tiling_state`] | `khist-core` | the paper's algorithms |
//!
//! ## Architecture: pull (Session) and push (Monitor) over one engine
//!
//! Every workload enters through a typed [`api::Analysis`] request and
//! returns a structured [`api::Report`]. There are two front doors over
//! the same engine — the pull-based [`api::Session`] (you ask, it draws)
//! and the push-based [`api::Monitor`] (the stream arrives, windows
//! answer):
//!
//! ```text
//!  Learn::k(6).eps(0.1)  TestL2::k(6)  TestL1::k(6)  Uniformity::eps(0.3)
//!  IdentityL2::against(q)  ClosenessL2::against(q)  Monotone::eps(0.3)
//!            │                    │                        │
//!            └────────────────────┼────────────────────────┘
//!                                 ▼           typed Analysis requests
//!          ┌──────────────────────┴──────────────────────┐
//!   PULL   │ Session::run(&[…])                          │   PUSH
//!          │                        Monitor::ingest(&[…])│
//!          ▼                                             ▼
//!   SamplePlan::for_batch                     WindowedSink (SampleSink)
//!          │ max(ℓ), max(r), max(m)             │ plan-shaped reservoir
//!          │ ONE draw shared by all             │ lanes; tumbling/sliding
//!          ▼                                    │ windows, O(budget) memory
//!   trait SampleOracle                          ▼ window closes
//!    ┌─────┼──────────────┐            WindowSnapshot ──▶ ReplayOracle
//!    ▼     ▼              ▼                     │ frozen lanes, zero new
//!  Dense  RecordFile   Replay ◀─────────────────┘ draws (same engine!)
//!  Oracle Oracle       Oracle
//!    │ alias │ one-pass   │ pre-drawn           ▼
//!    │ table │ reservoir  │ buffers      WindowReport {reports, drift}
//!    ▼       ▼ splitting  ▼                     │ ℓ₂ closeness vs the
//!   Vec<Report>  (verdict/histogram,            │ previous window
//!                statistic, samples spent,      ▼
//!                budget, seed, wall time;  `khist watch --json` (JSONL)
//!                serde → `khist … --json`)
//! ```
//!
//! Batching matters on streaming backends: a `Session::run` over
//! {learn, test-`ℓ₂`, uniformity} draws **once** — a single pass over a
//! [`oracle::RecordFileOracle`]'s file — where the pre-API free functions
//! cost one pass each. The per-algorithm free functions (`greedy::learn`,
//! `tester::test_l2`, …) remain as thin shims over the same
//! [`api::SamplePlan`] layer; the `*_dense` wrappers are **deprecated**.
//!
//! Push and pull are two transports for one sampling process: a tumbling
//! window pushed into a [`oracle::WindowedSink`] freezes lanes
//! bit-identical to replaying the same records through a
//! `RecordFileOracle` with the same seed, so `Monitor` reports match
//! `Session::open_records` reports exactly (property-tested in
//! `tests/monitor_push_pull.rs`).
//!
//! For fleets of keyed streams (per-tenant, per-endpoint), the
//! [`api::Engine`] lifts the same property one level up: stream keys hash
//! onto a shared-nothing pool of worker shards, each owning the pure
//! per-stream state machines ([`api::MonitorState`]) for its keys, with
//! per-stream seeds derived as `Engine::stream_seed(base_seed, key)` — so
//! a sharded run is **bit-identical per stream** to a dedicated
//! single-threaded `Monitor` on that stream's records, for any shard
//! count (property-tested in `tests/engine_sharding.rs`).
//!
//! ## Budgets
//!
//! All sample budgets implement the [`oracle::Budget`] trait (checked
//! `total_samples`, `calibrated`/`theoretical` constructors, serde
//! round-trip):
//!
//! | budget | params | shape | feeds |
//! |---|---|---|---|
//! | [`oracle::LearnerBudget`] | `(n, k, ε)` | `ℓ = ln(12n²)/2ξ²`, `r = ln(6n²)`, `m = 24/ξ²` | [`api::Learn`] |
//! | [`oracle::L2TesterBudget`] | `(n, ε)` | `r = 16·ln(6n²)`, `m = 64·ln n·ε⁻⁴` | [`api::TestL2`] |
//! | [`oracle::L1TesterBudget`] | `(n, k, ε)` | `r = 16·ln(6n²)`, `m = 2¹³√(kn)·ε⁻⁵` | [`api::TestL1`] |
//! | [`uniformity::UniformityBudget`] | `(n, ε)` | `m = 16√n·ε⁻⁴` | [`api::Uniformity`] (+ identity/closeness defaults) |
//!
//! Extreme parameters (`ε = 1e-300`, `n = usize::MAX`) produce a
//! [`dist::DistError`] instead of silently overflowing.
//!
//! ## Quickstart
//!
//! ```
//! use khist::prelude::*;
//!
//! // The unknown distribution: a Zipf over 256 values (not a k-histogram).
//! let p = khist::dist::generators::zipf(256, 1.1).unwrap();
//!
//! // One session = one oracle + one seed. Any backend works: an explicit
//! // pmf (here), a streamed record file, or a replayed capture.
//! let mut session = Session::from_dense(&p, 7);
//!
//! // One batch, one shared draw: learn a 6-piece histogram AND test
//! // 6-histogram-ness AND check uniformity from the same samples.
//! let reports = session
//!     .run(&[
//!         Learn::k(6).eps(0.1).scale(0.01).into(),
//!         TestL2::k(6).eps(0.3).scale(0.02).into(),
//!         Uniformity::eps(0.3).scale(0.05).into(),
//!     ])
//!     .unwrap();
//!
//! // Structured reports: histogram out of the learner…
//! let learned = reports[0].histogram.as_ref().unwrap();
//! let opt = v_optimal(&p, 6).unwrap();
//! assert!(learned.l2_sq_to(&p) - opt.sse < 8.0 * 0.1, "Theorem 2 bound");
//! // …verdicts out of the testers, and JSON out of everything.
//! assert!(reports[2].verdict.is_some());
//! let round_trip = khist::api::Report::from_json(&reports[0].to_json()).unwrap();
//! assert_eq!(round_trip, reports[0]);
//! ```

#![forbid(unsafe_code)]
// missing_docs is enforced centrally via [workspace.lints] in the root Cargo.toml.

pub mod app;

/// The README's code samples compile and run as doctests (via
/// `include_str!`), so the front-page quickstart can never rot.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
mod readme_doctests {}

pub use khist_baseline as baseline;
pub use khist_dist as dist;
pub use khist_fleet as fleet;
pub use khist_oracle as oracle;
pub use khist_stats as stats;

pub use khist_core::{
    api, compress, cost, flatness, greedy, identity, lower_bound, monotone, partition_search,
    tester, tiling_state, uniformity,
};

/// One-line imports for the common workflow.
pub mod prelude {
    pub use khist_baseline::{
        equi_depth, equi_width, greedy_merge, l1_flatten_optimal, max_diff, sample_then_dp,
        v_optimal,
    };
    pub use khist_core::api::{
        Analysis, AnalysisKind, BudgetSpec, ClosenessL2, Engine, EngineBuilder, FleetReport,
        FleetSummary, IdentityL2, Learn, Monitor, MonitorBuilder, MonitorState, Monotone,
        Report, SamplePlan, Session, TestL1, TestL2, TopStream, Uniformity, WindowReport,
    };
    pub use khist_core::compress::compress_to_k;
    pub use khist_core::greedy::{learn, learn_from_samples, CandidatePolicy, GreedyParams};
    pub use khist_core::identity::{test_closeness_l2, test_identity_l2};
    pub use khist_core::tester::{test_l1, test_l2, TestOutcome};
    pub use khist_core::uniformity::{test_uniformity, UniformityBudget};
    pub use khist_dist::{DenseDistribution, Interval, PriorityHistogram, TilingHistogram};
    pub use khist_oracle::{
        Budget, DenseOracle, L1TesterBudget, L2TesterBudget, LearnerBudget, RecordFileOracle,
        ReplayOracle, Reservoir, SampleOracle, SampleSet, SampleSink, Window, WindowSnapshot,
        WindowedSink,
    };

    // Deprecated pre-API wrappers, re-exported so downstream code keeps
    // compiling while it migrates (the deprecation fires at call sites).
    #[allow(deprecated)] // re-export keeps compiling; callers get the warning
    pub use khist_core::greedy::learn_dense;
    #[allow(deprecated)] // re-export keeps compiling; callers get the warning
    pub use khist_core::identity::{test_closeness_l2_dense, test_identity_l2_dense};
    #[allow(deprecated)] // re-export keeps compiling; callers get the warning
    pub use khist_core::tester::{test_l1_dense, test_l2_dense};
    #[allow(deprecated)] // re-export keeps compiling; callers get the warning
    pub use khist_core::uniformity::test_uniformity_dense;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let p = DenseDistribution::uniform(4).unwrap();
        assert_eq!(p.n(), 4);
        let _ = LearnerBudget::calibrated(4, 1, 0.5, 0.5).unwrap();
        let _session = Session::from_dense(&p, 1);
        let _analysis: Analysis = Learn::k(1).eps(0.5).scale(0.5).into();
    }
}
