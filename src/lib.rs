//! # khist — sub-linear approximation and testing of k-histogram distributions
//!
//! A Rust implementation of
//! *Indyk, Levi, Rubinfeld: "Approximating and Testing k-Histogram
//! Distributions in Sub-linear Time", PODS 2012*, together with the exact
//! offline optima and classical database-histogram baselines the paper is
//! measured against.
//!
//! ## What this library does
//!
//! A distribution `p` over `[n]` is a **k-histogram** when its probability
//! mass function is piecewise constant with `k` pieces. Given only i.i.d.
//! samples from `p`, this library can
//!
//! 1. **Learn** a `k`-histogram whose squared `ℓ₂` error is within an
//!    additive `O(ε)` of the best possible (`khist::greedy`, Theorems 1–2),
//!    using `Õ((k/ε)² ln n)` samples — far fewer than the `Ω(n)` any
//!    pointwise method needs;
//! 2. **Test** whether `p` even is a `k`-histogram, or is `ε`-far from every
//!    one, in `ℓ₂` (`O(ε⁻⁴ ln² n)` samples) or `ℓ₁` (`Õ(ε⁻⁵ √(kn))`
//!    samples) — `khist::tester`, Theorems 3–4;
//! 3. Reproduce the paper's `Ω(√(kn))` **lower bound** empirically
//!    (`khist::lower_bound`, Theorem 5).
//!
//! ## Crate map
//!
//! | module (re-export) | source crate | contents |
//! |---|---|---|
//! | [`dist`] | `khist-dist` | distributions, intervals, histograms, distances, generators |
//! | [`oracle`] | `khist-oracle` | sample multisets, collision estimators, budgets |
//! | [`stats`] | `khist-stats` | summaries, Wilson intervals, scaling fits |
//! | [`baseline`] | `khist-baseline` | exact v-optimal DP, `ℓ₁` DP, equi-width/depth, MaxDiff, greedy-merge |
//! | [`greedy`], [`tester`], [`flatness`], [`mod@partition_search`], [`lower_bound`], [`cost`], [`tiling_state`] | `khist-core` | the paper's algorithms |
//!
//! ## Quickstart
//!
//! ```
//! use khist::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//!
//! // The unknown distribution: a Zipf over 256 values (not a k-histogram).
//! let p = khist::dist::generators::zipf(256, 1.1).unwrap();
//!
//! // Learn a 6-piece histogram from samples only.
//! let budget = LearnerBudget::calibrated(256, 6, 0.1, 0.01);
//! let params = GreedyParams::fast(6, 0.1, budget);
//! let learned = learn(&p, &params, &mut rng).unwrap();
//!
//! // Compare against the information-theoretic optimum.
//! let opt = v_optimal(&p, 6).unwrap();
//! let gap = learned.tiling.l2_sq_to(&p) - opt.sse;
//! assert!(gap < 8.0 * 0.1, "Theorem 2 bound holds");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;

pub use khist_baseline as baseline;
pub use khist_dist as dist;
pub use khist_oracle as oracle;
pub use khist_stats as stats;

pub use khist_core::{
    compress, cost, flatness, greedy, identity, lower_bound, monotone, partition_search, tester,
    tiling_state, uniformity,
};

/// One-line imports for the common workflow.
pub mod prelude {
    pub use khist_baseline::{
        equi_depth, equi_width, greedy_merge, l1_flatten_optimal, max_diff, sample_then_dp,
        v_optimal,
    };
    pub use khist_core::compress::compress_to_k;
    pub use khist_core::greedy::{learn, learn_from_samples, CandidatePolicy, GreedyParams};
    pub use khist_core::identity::{test_closeness_l2, test_identity_l2};
    pub use khist_core::tester::{test_l1, test_l2, TestOutcome};
    pub use khist_core::uniformity::{test_uniformity, UniformityBudget};
    pub use khist_dist::{DenseDistribution, Interval, PriorityHistogram, TilingHistogram};
    pub use khist_oracle::{L1TesterBudget, L2TesterBudget, LearnerBudget, Reservoir, SampleSet};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let p = DenseDistribution::uniform(4).unwrap();
        assert_eq!(p.n(), 4);
        let _ = LearnerBudget::calibrated(4, 1, 0.5, 0.5);
    }
}
