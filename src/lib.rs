//! # khist — sub-linear approximation and testing of k-histogram distributions
//!
//! A Rust implementation of
//! *Indyk, Levi, Rubinfeld: "Approximating and Testing k-Histogram
//! Distributions in Sub-linear Time", PODS 2012*, together with the exact
//! offline optima and classical database-histogram baselines the paper is
//! measured against.
//!
//! ## What this library does
//!
//! A distribution `p` over `[n]` is a **k-histogram** when its probability
//! mass function is piecewise constant with `k` pieces. Given only i.i.d.
//! samples from `p`, this library can
//!
//! 1. **Learn** a `k`-histogram whose squared `ℓ₂` error is within an
//!    additive `O(ε)` of the best possible (`khist::greedy`, Theorems 1–2),
//!    using `Õ((k/ε)² ln n)` samples — far fewer than the `Ω(n)` any
//!    pointwise method needs;
//! 2. **Test** whether `p` even is a `k`-histogram, or is `ε`-far from every
//!    one, in `ℓ₂` (`O(ε⁻⁴ ln² n)` samples) or `ℓ₁` (`Õ(ε⁻⁵ √(kn))`
//!    samples) — `khist::tester`, Theorems 3–4;
//! 3. Reproduce the paper's `Ω(√(kn))` **lower bound** empirically
//!    (`khist::lower_bound`, Theorem 5).
//!
//! ## Crate map
//!
//! | module (re-export) | source crate | contents |
//! |---|---|---|
//! | [`dist`] | `khist-dist` | distributions, intervals, histograms, distances, generators |
//! | [`oracle`] | `khist-oracle` | the `SampleOracle` seam + backends, sample multisets, collision estimators, budgets |
//! | [`stats`] | `khist-stats` | summaries, Wilson intervals, scaling fits |
//! | [`baseline`] | `khist-baseline` | exact v-optimal DP, `ℓ₁` DP, equi-width/depth, MaxDiff, greedy-merge |
//! | [`greedy`], [`tester`], [`flatness`], [`mod@partition_search`], [`lower_bound`], [`cost`], [`tiling_state`] | `khist-core` | the paper's algorithms |
//!
//! ## Architecture: the sample-oracle seam
//!
//! The paper's algorithms only ever interact with the unknown `p` through
//! i.i.d. draws, so every algorithm entry point is generic over
//! [`oracle::SampleOracle`] (`domain_size` / `draw_set` / batched
//! `draw_sets` + `draw_batch`) rather than a concrete distribution:
//!
//! ```text
//!   learn · test_l1 · test_l2 · test_uniformity · test_identity_l2
//!   test_closeness_l2 · test_monotone_non_increasing      (khist-core)
//!                          │ generic over
//!                          ▼
//!                 trait SampleOracle                      (khist-oracle)
//!          ┌───────────────┼────────────────────┐
//!          ▼               ▼                    ▼
//!    DenseOracle     RecordFileOracle      ReplayOracle
//! ```
//!
//! Backend matrix:
//!
//! | backend | source of samples | memory | notes |
//! |---|---|---|---|
//! | [`oracle::DenseOracle`] | explicit pmf, Walker–Vose alias table | `O(n)` | `draw_sets` fans the `r` independent sets across threads; per-set RNG streams split from the seed keep results bit-identical to a sequential run |
//! | [`oracle::RecordFileOracle`] | line-oriented record file, one streaming pass per draw | `O(samples requested)` | reservoir-splits a pass into disjoint lanes; multi-million-line files are never materialized |
//! | [`oracle::ReplayOracle`] | pre-drawn buffers | `O(recorded)` | deterministic tests and workload replay |
//!
//! `*_dense` wrappers (e.g. [`greedy::learn_dense`],
//! [`tester::test_l2_dense`]) keep the pre-oracle signatures: they spin up
//! a seeded `DenseOracle` internally so existing call sites migrate by
//! appending `_dense`. The seam is the attachment point for every future
//! backend (sharded, network, cached).
//!
//! ## Quickstart
//!
//! ```
//! use khist::prelude::*;
//!
//! // The unknown distribution: a Zipf over 256 values (not a k-histogram).
//! let p = khist::dist::generators::zipf(256, 1.1).unwrap();
//!
//! // Sample access to p, seeded for reproducibility. Any SampleOracle
//! // backend (dense pmf, streamed record file, replayed capture) works.
//! let mut oracle = DenseOracle::new(&p, 7);
//!
//! // Learn a 6-piece histogram from samples only.
//! let budget = LearnerBudget::calibrated(256, 6, 0.1, 0.01);
//! let params = GreedyParams::fast(6, 0.1, budget);
//! let learned = learn(&mut oracle, &params).unwrap();
//!
//! // Compare against the information-theoretic optimum.
//! let opt = v_optimal(&p, 6).unwrap();
//! let gap = learned.tiling.l2_sq_to(&p) - opt.sse;
//! assert!(gap < 8.0 * 0.1, "Theorem 2 bound holds");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;

pub use khist_baseline as baseline;
pub use khist_dist as dist;
pub use khist_oracle as oracle;
pub use khist_stats as stats;

pub use khist_core::{
    compress, cost, flatness, greedy, identity, lower_bound, monotone, partition_search, tester,
    tiling_state, uniformity,
};

/// One-line imports for the common workflow.
pub mod prelude {
    pub use khist_baseline::{
        equi_depth, equi_width, greedy_merge, l1_flatten_optimal, max_diff, sample_then_dp,
        v_optimal,
    };
    pub use khist_core::compress::compress_to_k;
    pub use khist_core::greedy::{
        learn, learn_dense, learn_from_samples, CandidatePolicy, GreedyParams,
    };
    pub use khist_core::identity::{
        test_closeness_l2, test_closeness_l2_dense, test_identity_l2, test_identity_l2_dense,
    };
    pub use khist_core::tester::{test_l1, test_l1_dense, test_l2, test_l2_dense, TestOutcome};
    pub use khist_core::uniformity::{test_uniformity, test_uniformity_dense, UniformityBudget};
    pub use khist_dist::{DenseDistribution, Interval, PriorityHistogram, TilingHistogram};
    pub use khist_oracle::{
        DenseOracle, L1TesterBudget, L2TesterBudget, LearnerBudget, RecordFileOracle,
        ReplayOracle, Reservoir, SampleOracle, SampleSet,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let p = DenseDistribution::uniform(4).unwrap();
        assert_eq!(p.n(), 4);
        let _ = LearnerBudget::calibrated(4, 1, 0.5, 0.5);
    }
}
